"""Globally bounded, owner-fair cache budgeting.

The multi-tenant service hands every tenant its own prepared-plaintext and
keystream-materials caches. Per-cache ``maxsize`` bounds compose badly:
each bound is individually reasonable, but the *aggregate* grows linearly
with the tenant count — the memory blowup ROADMAP item 1 calls out for
the per-server ``lru_cache`` closures. A :class:`CacheBudget` is the fix:
one process-wide cost ceiling shared by any number of caches, with
eviction pressure always applied to the owner using the most of it.

**Fair share.** When the budget is over capacity, the victim is the owner
with the largest current usage. If the total exceeds the capacity, the
largest user necessarily sits above ``capacity / n_owners`` — so an owner
at or below its fair share is never evicted to make room for a hotter
one. A hot tenant filling the cache therefore evicts *itself* once the
other tenants are within their fair share, which is exactly the isolation
property the tenancy tests pin.

**Locking.** The budget lock is only ever taken *without* a cache lock
held: :class:`BudgetedLru` mutates its own store under its own lock,
releases it, and only then settles accounting with the budget. Evictor
callbacks run under the budget lock and take their cache's lock — a
one-way ordering (budget -> cache), so charge/evict cycles cannot
deadlock. A cache may transiently overshoot between its insert and the
settling charge; the overshoot is bounded by the number of concurrently
inserting threads and corrected on the next charge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ParameterError

__all__ = ["CacheBudget", "BudgetedLru", "BudgetSnapshot", "EVICTION_BURST"]

#: Evictions a single charge must force before the flight recorder hears
#: about it: steady one-at-a-time turnover is normal LRU behavior, a burst
#: means one insert displaced a working set (mirrors
#: :data:`repro.obs.health.EVICTION_BURST_THRESHOLD`).
EVICTION_BURST = 8


class BudgetSnapshot(dict):
    """JSON-able view of a budget: capacity, total, per-owner usage."""


class CacheBudget:
    """A shared cost ceiling for a family of caches, fair across owners.

    ``capacity`` is in abstract cost units (the caches choose the unit:
    prepared-plaintext slot rows, cached keystream blocks, ...). Caches
    register an *evictor* — a zero-argument callable returning the cost it
    freed (0.0 when its cache is empty) — and report usage through
    :meth:`charge` / :meth:`release`.
    """

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ParameterError(f"budget capacity must be > 0, got {capacity}")
        self.capacity = float(capacity)
        self._lock = threading.Lock()
        self._usage: Dict[str, float] = {}
        self._evictors: Dict[str, List[Callable[[], float]]] = {}
        self._evictions: Dict[str, int] = {}

    # -- registration ---------------------------------------------------------

    def register(self, owner: str, evictor: Callable[[], float]) -> None:
        """Attach one cache's evict-one callback under ``owner``."""
        with self._lock:
            self._evictors.setdefault(owner, []).append(evictor)
            self._usage.setdefault(owner, 0.0)
            self._evictions.setdefault(owner, 0)

    # -- accounting -----------------------------------------------------------

    def charge(self, owner: str, cost: float) -> None:
        """Record ``cost`` units now held by ``owner``; rebalance if over."""
        if cost < 0:
            raise ParameterError(f"cannot charge negative cost {cost}")
        with self._lock:
            self._usage[owner] = self._usage.get(owner, 0.0) + cost
            evicted = self._rebalance_locked()
        # Outside the budget lock (one-way ordering budget -> cache holds;
        # the recorder takes only its own lock): a single charge forcing a
        # burst of evictions means a working set far over its share.
        if evicted >= EVICTION_BURST:
            from repro.obs.health import get_flight_recorder

            get_flight_recorder().record(
                "cache_evictions",
                owner=owner,
                evicted=evicted,
                capacity=self.capacity,
            )

    def release(self, owner: str, cost: float) -> None:
        """Return ``cost`` units (the owner evicted or dropped entries)."""
        with self._lock:
            self._usage[owner] = max(0.0, self._usage.get(owner, 0.0) - cost)

    # -- eviction -------------------------------------------------------------

    def _rebalance_locked(self) -> int:
        """Evict from the largest owner until the total fits (or nothing frees).

        Returns the number of entries evicted by this call, so the caller
        can flag eviction *bursts* (>= :data:`EVICTION_BURST` in one charge)
        to the flight recorder once the lock is released.
        """
        evicted = 0
        while self.total > self.capacity:
            victim = max(self._usage, key=lambda o: self._usage[o])
            freed = 0.0
            for evictor in self._evictors.get(victim, ()):
                freed = evictor()
                if freed > 0:
                    break
            if freed <= 0:
                # The ledger says the victim holds cost but no cache can
                # free any (e.g. usage charged by a cache that was cleared
                # out-of-band). Zero the stale claim rather than spin.
                self._usage[victim] = 0.0
                continue
            self._usage[victim] = max(0.0, self._usage[victim] - freed)
            self._evictions[victim] = self._evictions.get(victim, 0) + 1
            evicted += 1
        return evicted

    # -- introspection --------------------------------------------------------

    @property
    def total(self) -> float:
        return sum(self._usage.values())

    def usage(self, owner: str) -> float:
        with self._lock:
            return self._usage.get(owner, 0.0)

    def evictions(self, owner: str) -> int:
        with self._lock:
            return self._evictions.get(owner, 0)

    @property
    def fair_share(self) -> float:
        """Capacity split evenly over every registered owner."""
        with self._lock:
            n = len(self._evictors)
        return self.capacity / n if n else self.capacity

    def snapshot(self) -> BudgetSnapshot:
        with self._lock:
            return BudgetSnapshot(
                capacity=self.capacity,
                total=round(self.total, 3),
                owners={o: round(u, 3) for o, u in sorted(self._usage.items())},
                evictions=dict(sorted(self._evictions.items())),
            )


class BudgetedLru:
    """A thread-safe LRU that settles its cost against a shared budget.

    ``cost_of(key, value)`` prices an entry (default 1.0 per entry); the
    local ``maxsize`` still applies as a per-cache entry bound on top of
    the shared cost ceiling. ``owner`` namespaces the budget accounting —
    two caches may share an owner (e.g. a tenant's matrix and rc caches
    draw from the tenant's one fair share).
    """

    def __init__(
        self,
        owner: str,
        budget: Optional[CacheBudget] = None,
        maxsize: int = 0,
        cost_of: Optional[Callable[[Hashable, object], float]] = None,
    ):
        if maxsize < 0:
            raise ParameterError(f"maxsize must be >= 0, got {maxsize}")
        self.owner = owner
        self.budget = budget
        self.maxsize = maxsize  #: 0 means no local entry bound
        self._cost_of = cost_of or (lambda key, value: 1.0)
        self._lock = threading.Lock()
        self._store: "OrderedDict[Hashable, Tuple[object, float]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        if budget is not None:
            budget.register(owner, self._evict_one)

    def _evict_one(self) -> float:
        """Budget callback: drop the least-recently-used entry."""
        with self._lock:
            if not self._store:
                return 0.0
            _, (_, cost) = self._store.popitem(last=False)
            return cost

    def get_or_create(self, key: Hashable, factory: Callable[[], object]) -> object:
        """The ``lru_cache`` contract: cached value, or ``factory()`` on miss.

        The factory runs outside every lock (derivations are deterministic,
        so a racing duplicate miss is idempotent); budget accounting is
        settled after the local insert, never while holding the store lock.
        """
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._hits += 1
                self._store.move_to_end(key)
                return entry[0]
            self._misses += 1
        value = factory()
        cost = float(self._cost_of(key, value))
        evicted = 0.0
        inserted = False
        with self._lock:
            if key not in self._store:
                self._store[key] = (value, cost)
                inserted = True
                while self.maxsize and len(self._store) > self.maxsize:
                    _, (_, freed) = self._store.popitem(last=False)
                    evicted += freed
        if self.budget is not None:
            if evicted:
                self.budget.release(self.owner, evicted)
            if inserted:
                self.budget.charge(self.owner, cost)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def cost(self) -> float:
        with self._lock:
            return sum(c for _, c in self._store.values())

    def cache_info(self) -> Dict[str, float]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._store),
                "cost": sum(c for _, c in self._store.values()),
            }

    def clear(self) -> None:
        with self._lock:
            freed = sum(c for _, c in self._store.values())
            self._store.clear()
        if self.budget is not None and freed:
            self.budget.release(self.owner, freed)
