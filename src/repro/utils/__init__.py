"""Shared low-level helpers: bit manipulation, table rendering, RNG seeding."""

from repro.utils.bits import (
    bit_length_mask,
    bytes_to_words_le,
    rotl64,
    words_to_bytes_le,
)
from repro.utils.tables import format_table

__all__ = [
    "bit_length_mask",
    "bytes_to_words_le",
    "format_table",
    "rotl64",
    "words_to_bytes_le",
]
