"""Shared low-level helpers: bit manipulation, tables, cache budgeting."""

from repro.utils.bits import (
    bit_length_mask,
    bytes_to_words_le,
    rotl64,
    words_to_bytes_le,
)
from repro.utils.budget import BudgetedLru, CacheBudget
from repro.utils.tables import format_table

__all__ = [
    "BudgetedLru",
    "CacheBudget",
    "bit_length_mask",
    "bytes_to_words_le",
    "format_table",
    "rotl64",
    "words_to_bytes_le",
]
