"""Exception hierarchy for the PASTA-on-Edge reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ParameterError(ReproError):
    """An invalid or inconsistent parameter set was supplied."""


class SingularMatrixError(ReproError):
    """A matrix expected to be invertible over F_p turned out singular."""


class NoiseBudgetExhausted(ReproError):
    """A BFV ciphertext no longer decrypts correctly (noise overflow)."""


class NonceReuseError(ReproError):
    """A (nonce, counter) keystream window would be consumed twice.

    Raised by the nonce sequencers in :mod:`repro.apps.video` and the
    streaming service when a monotonic nonce counter wraps around or a
    caller tries to rewind it — continuing would repeat keystream and leak
    plaintext differences.
    """


class ServiceError(ReproError):
    """The streaming transciphering service reached an invalid state."""


class UplinkError(ServiceError):
    """A frame was lost or mangled on the modeled uplink (drop/corrupt)."""


class SimulationError(ReproError):
    """The hardware/SoC simulation reached an inconsistent state."""


class AssemblerError(ReproError):
    """The RV32 assembler rejected an input program."""


class TrapError(SimulationError):
    """The RISC-V core raised a trap (illegal instruction, misaligned access...)."""
