"""Command-line entry: regenerate any reproduced table or figure.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2               # print one experiment
    python -m repro all                  # print everything
    python -m repro report [PATH]        # (re)write EXPERIMENTS.md
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    from repro.eval import EXPERIMENTS

    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0

    command = argv[0]
    if command == "report":
        from repro.eval.report import main as report_main

        return report_main(argv[1:])
    if command == "all":
        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name]().render())
            print()
        return 0
    if command in EXPERIMENTS:
        print(EXPERIMENTS[command]().render())
        return 0
    print(f"unknown experiment {command!r}; try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
