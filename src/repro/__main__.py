"""Command-line entry: regenerate any reproduced table or figure.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2               # print one experiment
    python -m repro all                  # print everything
    python -m repro report [PATH]        # (re)write EXPERIMENTS.md
    python -m repro service [options]    # run the streaming pipeline demo
    python -m repro multitenant [opts]   # sharded multi-tenant service demo
    python -m repro trace [options]      # traced pipeline run -> Perfetto JSON
    python -m repro health [options]     # SLO health report for a short run
    python -m repro perfgate [options]   # BENCH_*.json vs committed baselines

service options (all optional)::

    --frames N        frames to stream (default 128)
    --workers N       recovery workers (default 4)
    --drop-rate R     injected uplink drop probability (default 0.0)
    --corrupt-rate R  injected corruption probability (default 0.0)
    --mode M          symmetric | hhe (default symmetric)
    --json            emit the metrics snapshot as JSON instead of a summary

multitenant options (all optional)::

    --tenants N            distinct tenant key schedules (default 4)
    --sessions-per-tenant N  concurrent sessions each (default 16)
    --frames N             frames per session (default 4)
    --shards N             worker shards (default 2)
    --workers N            workers per shard (default 1)
    --drop-rate R          injected uplink drop probability (default 0.0)
    --hot-tenant           make tenant 0 offer 4x the sessions of the rest
    --budget-rows N        global prepared/materials cache budget (default 4096)
    --mode M               symmetric | hhe (default symmetric)
    --json                 emit the full result as JSON

trace options (all optional)::

    --out PATH        Perfetto/Chrome trace JSON destination (default trace.json)
    --metrics-out P   also write the registry in Prometheus text format
    --frames N        frames to stream (default 64)
    --workers N       recovery workers (default 4)
    --drop-rate R     injected uplink drop probability (default 0.0)
    --mode M          symmetric | hhe (default symmetric)
    --tolerance T     cycle-attribution divergence flag threshold (default 0.25)

Load the trace at https://ui.perfetto.dev (Open trace file). Spans nest
producer -> encrypt -> keystream with variant/omega attributes and
modeled-cycle annotations in each slice's args; flight-recorder time
series (uplink queue depth, noise headroom) render as counter tracks.

health options (all optional)::

    --tenants N            distinct tenants in the probe run (default 2)
    --sessions-per-tenant N  sessions each (default 2)
    --frames N             frames per session (default 4)
    --drop-rate R          injected uplink drop probability (default 0.0)
    --mode M               symmetric | hhe (default symmetric)
    --json                 emit the HealthReport as JSON
    --out PATH             also write the JSON report to PATH

The health command streams a short multi-tenant run through a fresh
registry/tracer/flight-recorder, folds the per-tenant SLO windows (p99
latency, frame loss, minimum modeled noise headroom in hhe mode) and the
incident ring into a HealthReport, and exits 0 iff healthy.

perfgate options: --current DIR, --baseline DIR, --tolerance T (see
``repro.eval.perfgate``).
"""

from __future__ import annotations

import sys


def service_main(argv) -> int:
    """Run the streaming transciphering service once and report metrics."""
    import json

    from repro.obs import MetricsRegistry
    from repro.pasta.params import PASTA_MICRO, PASTA_TOY
    from repro.service import FaultPlan, ServiceConfig, StreamingPipeline, TILE8
    from repro.apps.video import Resolution

    opts = {"frames": 128, "workers": 4, "drop-rate": 0.0, "corrupt-rate": 0.0,
            "mode": "symmetric", "json": False}
    it = iter(argv)
    for arg in it:
        name = arg.lstrip("-")
        if name == "json":
            opts["json"] = True
        elif name in ("frames", "workers"):
            opts[name] = int(next(it))
        elif name in ("drop-rate", "corrupt-rate"):
            opts[name] = float(next(it))
        elif name == "mode":
            opts["mode"] = next(it)
        else:
            print(f"unknown service option {arg!r}", file=sys.stderr)
            return 2

    hhe = opts["mode"] == "hhe"
    config = ServiceConfig(
        params=PASTA_MICRO if hhe else PASTA_TOY,
        resolution=Resolution("TILE4", 4, 4) if hhe else TILE8,
        n_frames=opts["frames"],
        n_workers=opts["workers"],
        batch_frames=4 if hhe else 32,
        worker_batch=4 if hhe else 32,
        queue_capacity=128,
        mode=opts["mode"],
    )
    plan = FaultPlan(seed=1, drop_rate=opts["drop-rate"], corrupt_rate=opts["corrupt-rate"])
    registry = MetricsRegistry()
    result = StreamingPipeline(config, plan, registry=registry).run()

    if opts["json"]:
        print(json.dumps({"fps": result.fps, "frames": len(result.frames),
                          "metrics": result.metrics}, indent=2))
        return 0
    retried = sum(1 for n in result.attempts.values() if n > 1)
    print(f"streaming service ({config.mode}, {config.params.name}, "
          f"{config.resolution.name}, {config.n_workers} workers)")
    print(f"  frames recovered  {len(result.frames)}/{config.n_frames}")
    print(f"  sustained rate    {result.fps:.1f} frames/s over {result.duration_seconds:.2f}s")
    print(f"  frames retried    {retried}")
    for name in ("service.uplink.dropped", "service.crc.rejected", "service.retries",
                 "service.frames.duplicate", "service.degradation.steps"):
        value = result.metrics.get(name, {}).get("value", 0)
        print(f"  {name:<26} {value}")
    for stage in ("service.encrypt.seconds", "service.recover.seconds",
                  "service.frame_latency.seconds"):
        hist = result.metrics.get(stage)
        if hist and hist["count"]:
            print(f"  {stage:<30} p50 {hist['p50'] * 1e3:7.2f} ms   "
                  f"p99 {hist['p99'] * 1e3:7.2f} ms")
    return 0


def multitenant_main(argv) -> int:
    """Run the sharded multi-tenant service once and report per-tenant stats."""
    import json

    from repro.obs import MetricsRegistry
    from repro.pasta.params import PASTA_MICRO, PASTA_TOY
    from repro.service import FaultPlan, MultiTenantConfig, MultiTenantService, TenantSpec

    opts = {"tenants": 4, "sessions-per-tenant": 16, "frames": 4, "shards": 2,
            "workers": 1, "drop-rate": 0.0, "hot-tenant": False,
            "budget-rows": 4096, "mode": "symmetric", "json": False}
    it = iter(argv)
    for arg in it:
        name = arg.lstrip("-")
        if name in ("json", "hot-tenant"):
            opts[name] = True
        elif name in ("tenants", "sessions-per-tenant", "frames", "shards",
                      "workers", "budget-rows"):
            opts[name] = int(next(it))
        elif name == "drop-rate":
            opts[name] = float(next(it))
        elif name == "mode":
            opts["mode"] = next(it)
        else:
            print(f"unknown multitenant option {arg!r}", file=sys.stderr)
            return 2

    hhe = opts["mode"] == "hhe"
    specs = tuple(
        TenantSpec(
            f"tenant-{i:02d}",
            sessions=opts["sessions-per-tenant"] * (4 if opts["hot-tenant"] and i == 0 else 1),
            frames_per_session=opts["frames"],
        )
        for i in range(opts["tenants"])
    )
    config = MultiTenantConfig(
        tenants=specs,
        params=PASTA_MICRO if hhe else PASTA_TOY,
        n_shards=opts["shards"],
        workers_per_shard=opts["workers"],
        mode=opts["mode"],
        engine_cache_blocks=opts["budget-rows"],
        prepared_cache_rows=opts["budget-rows"],
    )
    plan = FaultPlan(seed=1, drop_rate=opts["drop-rate"])
    registry = MetricsRegistry()
    result = MultiTenantService(config, plan, registry=registry).run()

    if opts["json"]:
        print(json.dumps({
            "sessions_per_s": result.sessions_per_s,
            "frames_per_s": result.frames_per_s,
            "frames_recovered": result.frames_recovered,
            "frames_lost": result.frames_lost,
            "shed_frames": result.shed_frames,
            "admission_deferred": result.admission_deferred,
            "tenant_latency": result.tenant_latency,
            "cache_budgets": result.cache_budgets,
        }, indent=2))
        return 0
    print(f"multi-tenant service ({config.mode}, {config.params.name}, "
          f"{len(specs)} tenants, {config.total_sessions} sessions, "
          f"{config.n_shards} shards)")
    print(f"  sessions completed {result.sessions_completed}/{config.total_sessions} "
          f"({result.sessions_per_s:.1f}/s)")
    print(f"  frames recovered   {result.frames_recovered}/{config.total_frames} "
          f"({result.frames_per_s:.1f}/s), {result.frames_lost} lost")
    print(f"  shed frames        {result.shed_frames}")
    print(f"  sessions deferred  {result.admission_deferred}")
    for tenant, summary in sorted(result.tenant_latency.items()):
        print(f"  {tenant:<12} p50 {summary['p50'] * 1e3:7.2f} ms   "
              f"p99 {summary['p99'] * 1e3:7.2f} ms   ({int(summary['count'])} frames)")
    for name, snap in result.cache_budgets.items():
        print(f"  budget {name:<16} {snap['total']:.0f}/{snap['capacity']:.0f} used, "
              f"owners {snap['owners']}")
    return 0


def trace_main(argv) -> int:
    """Run one traced pipeline pass; export Perfetto JSON + cycle report."""
    from repro.obs import (
        FlightRecorder,
        MetricsRegistry,
        Tracer,
        prometheus_text,
        set_flight_recorder,
        set_registry,
        set_tracer,
        write_chrome_trace,
    )
    from repro.obs.cycles import attribute
    from repro.pasta.params import PASTA_MICRO, PASTA_TOY
    from repro.service import FaultPlan, ServiceConfig, StreamingPipeline, TILE8
    from repro.apps.video import Resolution

    opts = {"out": "trace.json", "metrics-out": None, "frames": 64, "workers": 4,
            "drop-rate": 0.0, "mode": "symmetric", "tolerance": 0.25}
    it = iter(argv)
    for arg in it:
        name = arg.lstrip("-")
        if name in ("frames", "workers"):
            opts[name] = int(next(it))
        elif name in ("drop-rate", "tolerance"):
            opts[name] = float(next(it))
        elif name in ("out", "metrics-out", "mode"):
            opts[name] = next(it)
        else:
            print(f"unknown trace option {arg!r}", file=sys.stderr)
            return 2

    hhe = opts["mode"] == "hhe"
    config = ServiceConfig(
        params=PASTA_MICRO if hhe else PASTA_TOY,
        resolution=Resolution("TILE4", 4, 4) if hhe else TILE8,
        n_frames=opts["frames"],
        n_workers=opts["workers"],
        batch_frames=4 if hhe else 32,
        worker_batch=4 if hhe else 32,
        queue_capacity=128,
        mode=opts["mode"],
    )
    plan = FaultPlan(seed=1, drop_rate=opts["drop-rate"])

    # Fresh registry + tracer + flight recorder for exactly this run; the
    # engines' spans resolve the globals at call time, so swap them in and
    # restore after.
    tracer = Tracer()
    recorder = FlightRecorder()
    previous_tracer = set_tracer(tracer)
    previous_registry = set_registry(MetricsRegistry())
    previous_recorder = set_flight_recorder(recorder)
    try:
        result = StreamingPipeline(config, plan).run()
    finally:
        registry = set_registry(previous_registry)
        set_tracer(previous_tracer)
        set_flight_recorder(previous_recorder)

    n_spans = write_chrome_trace(
        opts["out"], tracer, process_name="repro-service", counters=recorder
    )
    if opts["metrics-out"]:
        with open(opts["metrics-out"], "w") as fh:
            fh.write(prometheus_text(registry, recorder=recorder))

    report = attribute(tracer.finished_spans(), tolerance=opts["tolerance"])
    print(f"traced pipeline run ({config.mode}, {config.params.name}, "
          f"{config.n_workers} workers): {len(result.frames)}/{config.n_frames} frames, "
          f"{result.fps:.1f} frames/s")
    print(f"  {n_spans} spans -> {opts['out']}  (open at https://ui.perfetto.dev)")
    if opts["metrics-out"]:
        print(f"  metrics -> {opts['metrics-out']} (Prometheus text)")
    print()
    print("cycle attribution (measured share vs accelerator-model share):")
    print(report.render())
    flagged = report.flagged()
    if flagged:
        print(f"\n  {len(flagged)} stage(s) diverge past {opts['tolerance']:.0%}: "
              + ", ".join(r.stage for r in flagged))
    return 0


def health_main(argv) -> int:
    """Run a short probe workload and print/write the SLO health report."""
    import json

    from repro.obs import (
        FlightRecorder,
        MetricsRegistry,
        Tracer,
        evaluate_health,
        set_flight_recorder,
        set_registry,
        set_tracer,
    )
    from repro.pasta.params import PASTA_MICRO, PASTA_TOY
    from repro.service import FaultPlan, MultiTenantConfig, MultiTenantService, TenantSpec

    opts = {"tenants": 2, "sessions-per-tenant": 2, "frames": 4, "drop-rate": 0.0,
            "mode": "symmetric", "json": False, "out": None}
    it = iter(argv)
    for arg in it:
        name = arg.lstrip("-")
        if name == "json":
            opts["json"] = True
        elif name in ("tenants", "sessions-per-tenant", "frames"):
            opts[name] = int(next(it))
        elif name == "drop-rate":
            opts[name] = float(next(it))
        elif name in ("mode", "out"):
            opts[name] = next(it)
        else:
            print(f"unknown health option {arg!r}", file=sys.stderr)
            return 2

    hhe = opts["mode"] == "hhe"
    specs = tuple(
        TenantSpec(
            f"tenant-{i:02d}",
            sessions=opts["sessions-per-tenant"],
            frames_per_session=opts["frames"],
        )
        for i in range(opts["tenants"])
    )
    config = MultiTenantConfig(
        tenants=specs,
        params=PASTA_MICRO if hhe else PASTA_TOY,
        n_shards=2,
        mode=opts["mode"],
    )
    plan = FaultPlan(seed=1, drop_rate=opts["drop-rate"])

    # The probe owns its observability state end to end: fresh registry,
    # tracer, and flight recorder, restored whatever the run does.
    registry = MetricsRegistry()
    tracer = Tracer()
    recorder = FlightRecorder()
    previous_registry = set_registry(registry)
    previous_tracer = set_tracer(tracer)
    previous_recorder = set_flight_recorder(recorder)
    try:
        MultiTenantService(config, plan, registry=registry, tracer=tracer).run()
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)
        set_flight_recorder(previous_recorder)

    report = evaluate_health(registry=registry, recorder=recorder)
    payload = report.to_dict()
    if opts["out"]:
        with open(opts["out"], "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    if opts["json"]:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
    return 0 if report.healthy else 1


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    from repro.eval import EXPERIMENTS

    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0

    command = argv[0]
    if command == "service":
        return service_main(argv[1:])
    if command == "multitenant":
        return multitenant_main(argv[1:])
    if command == "trace":
        return trace_main(argv[1:])
    if command == "health":
        return health_main(argv[1:])
    if command == "perfgate":
        from repro.eval.perfgate import main as perfgate_main

        return perfgate_main(argv[1:])
    if command == "report":
        from repro.eval.report import main as report_main

        return report_main(argv[1:])
    if command == "all":
        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name]().render())
            print()
        return 0
    if command in EXPERIMENTS:
        print(EXPERIMENTS[command]().render())
        return 0
    print(f"unknown experiment {command!r}; try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
