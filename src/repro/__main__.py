"""Command-line entry: regenerate any reproduced table or figure.

Usage::

    python -m repro list                 # available experiments
    python -m repro table2               # print one experiment
    python -m repro all                  # print everything
    python -m repro report [PATH]        # (re)write EXPERIMENTS.md
    python -m repro service [options]    # run the streaming pipeline demo

service options (all optional)::

    --frames N        frames to stream (default 128)
    --workers N       recovery workers (default 4)
    --drop-rate R     injected uplink drop probability (default 0.0)
    --corrupt-rate R  injected corruption probability (default 0.0)
    --mode M          symmetric | hhe (default symmetric)
    --json            emit the metrics snapshot as JSON instead of a summary
"""

from __future__ import annotations

import sys


def service_main(argv) -> int:
    """Run the streaming transciphering service once and report metrics."""
    import json

    from repro.obs import MetricsRegistry
    from repro.pasta.params import PASTA_MICRO, PASTA_TOY
    from repro.service import FaultPlan, ServiceConfig, StreamingPipeline, TILE8
    from repro.apps.video import Resolution

    opts = {"frames": 128, "workers": 4, "drop-rate": 0.0, "corrupt-rate": 0.0,
            "mode": "symmetric", "json": False}
    it = iter(argv)
    for arg in it:
        name = arg.lstrip("-")
        if name == "json":
            opts["json"] = True
        elif name in ("frames", "workers"):
            opts[name] = int(next(it))
        elif name in ("drop-rate", "corrupt-rate"):
            opts[name] = float(next(it))
        elif name == "mode":
            opts["mode"] = next(it)
        else:
            print(f"unknown service option {arg!r}", file=sys.stderr)
            return 2

    hhe = opts["mode"] == "hhe"
    config = ServiceConfig(
        params=PASTA_MICRO if hhe else PASTA_TOY,
        resolution=Resolution("TILE4", 4, 4) if hhe else TILE8,
        n_frames=opts["frames"],
        n_workers=opts["workers"],
        batch_frames=4 if hhe else 32,
        worker_batch=4 if hhe else 32,
        queue_capacity=128,
        mode=opts["mode"],
    )
    plan = FaultPlan(seed=1, drop_rate=opts["drop-rate"], corrupt_rate=opts["corrupt-rate"])
    registry = MetricsRegistry()
    result = StreamingPipeline(config, plan, registry=registry).run()

    if opts["json"]:
        print(json.dumps({"fps": result.fps, "frames": len(result.frames),
                          "metrics": result.metrics}, indent=2))
        return 0
    retried = sum(1 for n in result.attempts.values() if n > 1)
    print(f"streaming service ({config.mode}, {config.params.name}, "
          f"{config.resolution.name}, {config.n_workers} workers)")
    print(f"  frames recovered  {len(result.frames)}/{config.n_frames}")
    print(f"  sustained rate    {result.fps:.1f} frames/s over {result.duration_seconds:.2f}s")
    print(f"  frames retried    {retried}")
    for name in ("service.uplink.dropped", "service.crc.rejected", "service.retries",
                 "service.frames.duplicate", "service.degradation.steps"):
        value = result.metrics.get(name, {}).get("value", 0)
        print(f"  {name:<26} {value}")
    for stage in ("service.encrypt.seconds", "service.recover.seconds",
                  "service.frame_latency.seconds"):
        hist = result.metrics.get(stage)
        if hist and hist["count"]:
            print(f"  {stage:<30} p50 {hist['p50'] * 1e3:7.2f} ms   "
                  f"p99 {hist['p99'] * 1e3:7.2f} ms")
    return 0


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    from repro.eval import EXPERIMENTS

    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0

    command = argv[0]
    if command == "service":
        return service_main(argv[1:])
    if command == "report":
        from repro.eval.report import main as report_main

        return report_main(argv[1:])
    if command == "all":
        for name in sorted(EXPERIMENTS):
            print(EXPERIMENTS[name]().render())
            print()
        return 0
    if command in EXPERIMENTS:
        print(EXPERIMENTS[command]().render())
        return 0
    print(f"unknown experiment {command!r}; try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
