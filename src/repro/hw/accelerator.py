"""Top-level PASTA accelerator model (paper Fig. 6).

:class:`PastaAccelerator` is the behavioral equivalent of the paper's RTL
top module: it takes the nonce, counter, and message block and produces the
ciphertext (``c = m + KS``) together with a :class:`~repro.hw.report.CycleReport`.
The key is loaded once (register file inside the wrapper), mirroring the
hardware's one-time key configuration.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Type

import numpy as np

from repro.errors import ParameterError
from repro.hw.report import CycleReport
from repro.hw.scheduler import simulate_block
from repro.keccak.hw_model import KeccakCoreModel, OverlappedKeccakCore
from repro.pasta.params import PastaParams


class PastaAccelerator:
    """Behavioral model of the standalone PASTA cryptoprocessor."""

    def __init__(
        self,
        params: PastaParams,
        key: Sequence[int],
        core_cls: Type[KeccakCoreModel] = OverlappedKeccakCore,
    ):
        if len(key) != params.key_size:
            raise ParameterError(f"key must have {params.key_size} elements, got {len(key)}")
        self.params = params
        self.field = params.field
        self.key = self.field.array(key)
        self.core_cls = core_cls

    def keystream_block(self, nonce: int, counter: int) -> Tuple[np.ndarray, CycleReport]:
        """Generate one keystream block with its cycle report."""
        return simulate_block(self.params, self.key, nonce, counter, self.core_cls)

    def encrypt_block(
        self, message: Sequence[int], nonce: int, counter: int
    ) -> Tuple[np.ndarray, CycleReport]:
        """Encrypt up to t elements; the final modular add is part of the tail."""
        m = self.field.array(message)
        if m.shape[0] > self.params.t:
            raise ParameterError(f"block holds at most t={self.params.t} elements")
        ks, report = self.keystream_block(nonce, counter)
        return self.field.vec_add(m, ks[: m.shape[0]]), report

    def decrypt_block(
        self, ciphertext: Sequence[int], nonce: int, counter: int
    ) -> Tuple[np.ndarray, CycleReport]:
        """Decrypt up to t elements (same keystream, modular subtract)."""
        c = self.field.array(ciphertext)
        if c.shape[0] > self.params.t:
            raise ParameterError(f"block holds at most t={self.params.t} elements")
        ks, report = self.keystream_block(nonce, counter)
        return self.field.vec_sub(c, ks[: c.shape[0]]), report

    def encrypt_stream(
        self, message: Sequence[int], nonce: int
    ) -> Tuple[np.ndarray, list]:
        """Encrypt a long message block-by-block; returns (ct, [reports]).

        Blocks are processed strictly serially, as in the hardware (one
        block must finish before the next starts — also the SoC bus
        constraint of Sec. IV-A).
        """
        arr = self.field.array(message)
        t = self.params.t
        out = self.field.zeros(arr.shape[0])
        reports = []
        for counter, start in enumerate(range(0, arr.shape[0], t)):
            chunk = arr[start : start + t]
            ct, rep = self.encrypt_block(chunk, nonce, counter)
            out[start : start + chunk.shape[0]] = ct
            reports.append(rep)
        return out, reports

    def average_cycles(self, nonces: Sequence[int], counter: int = 0) -> float:
        """Average block cycles across nonces (the paper reports averages
        because rejection counts vary with nonce/counter)."""
        if not nonces:
            raise ParameterError("need at least one nonce")
        total = 0
        for nonce in nonces:
            _, rep = self.keystream_block(nonce, counter)
            total += rep.total_cycles
        return total / len(nonces)
