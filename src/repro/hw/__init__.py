"""Cycle-accurate behavioral model of the PASTA cryptoprocessor."""

from repro.hw.accelerator import PastaAccelerator
from repro.hw.area import (
    ARTIX7_DSP,
    ARTIX7_FF,
    ARTIX7_LUT,
    ASIC_AREA_MM2,
    ASIC_MAX_POWER_W,
    SOC_AREA_MM2,
    SOC_AREA_WITH_IBEX_MM2,
    FpgaArea,
    area_time_product,
    asic_area_mm2,
    dsp_count,
    dsp_per_multiplier,
    fpga_area,
    module_areas,
    module_breakdown,
)
from repro.hw.report import (
    ASIC_CLOCK_MHZ,
    CPU_CLOCK_MHZ,
    FPGA_CLOCK_MHZ,
    RISCV_CLOCK_MHZ,
    CycleReport,
    PhaseWindow,
)
from repro.hw.scheduler import paper_cycle_model, simulate_block
from repro.hw.xof_unit import XofSamplerUnit

__all__ = [
    "ARTIX7_DSP",
    "ARTIX7_FF",
    "ARTIX7_LUT",
    "ASIC_AREA_MM2",
    "ASIC_CLOCK_MHZ",
    "ASIC_MAX_POWER_W",
    "CPU_CLOCK_MHZ",
    "CycleReport",
    "FPGA_CLOCK_MHZ",
    "FpgaArea",
    "PastaAccelerator",
    "PhaseWindow",
    "RISCV_CLOCK_MHZ",
    "SOC_AREA_MM2",
    "SOC_AREA_WITH_IBEX_MM2",
    "XofSamplerUnit",
    "area_time_product",
    "asic_area_mm2",
    "dsp_count",
    "dsp_per_multiplier",
    "fpga_area",
    "module_areas",
    "module_breakdown",
    "paper_cycle_model",
    "simulate_block",
]
