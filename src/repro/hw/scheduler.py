"""Transaction-level schedule of one PASTA block (paper Fig. 3).

The simulation advances a timeline in which every operation is a window
``[start, end)`` on a named unit, with start times derived from data
dependencies (XOF vector readiness, previous-layer state) and structural
hazards (each unit processes one operation at a time):

* ``V_alphaL -> MatGen/MatMul(L)`` starts when the left matrix seed is fully
  sampled and the state half is ready; it occupies the MatGen MAC array for
  t row-streaming cycles and completes after ``6 + t + log2 t``.
* The right half follows on the same arrays.
* ``RC add`` (3 cc on the t shared adders) waits for the matrix product and
  the sampled round-constant vector.
* ``Mix`` (3 adds) and the S-box (shared multipliers) close the round; in
  the final layer the paper charges a t-cycle tail for the last Mix/output
  drain instead.

Functional values are computed alongside with the exact same sampled
vectors, so the resulting keystream is bit-identical to the software
reference — asserted by the integration tests.
"""

from __future__ import annotations

from typing import List, Tuple, Type

import numpy as np

from repro.errors import SimulationError
from repro.hw import arith_units as au
from repro.hw.report import CycleReport, PhaseWindow
from repro.hw.xof_unit import XofSamplerUnit
from repro.keccak.hw_model import KeccakCoreModel, OverlappedKeccakCore
from repro.pasta import layers as L
from repro.pasta.matgen import generate_matrix
from repro.pasta.params import PastaParams


def simulate_block(
    params: PastaParams,
    key: np.ndarray,
    nonce: int,
    counter: int,
    core_cls: Type[KeccakCoreModel] = OverlappedKeccakCore,
) -> Tuple[np.ndarray, CycleReport]:
    """Simulate one block's keystream generation; returns (KS, report)."""
    field = params.field
    t = params.t
    if len(key) != params.key_size:
        raise SimulationError(f"key must have {params.key_size} elements")
    key = field.coerce(np.asarray(key))

    xof = XofSamplerUnit(params, nonce, counter, core_cls)
    windows: List[PhaseWindow] = []

    mat_cycles = au.mat_stage_cycles(t)
    matgen_occupancy = au.matgen_row_cycles(t)

    # Unit-free cycles (structural hazards).
    matgen_free = 0
    adders_free = 0
    muls_free = 0  # shared multipliers for the S-box batches

    xl = key[:t].copy()
    xr = key[t:].copy()
    state_ready = 0

    total_layers = params.affine_layers
    end_of_block = 0

    for layer in range(total_layers):
        alpha_l, c_alpha_l = xof.next_vector(min_value=1)
        alpha_r, c_alpha_r = xof.next_vector(min_value=1)
        rc_l, c_rc_l = xof.next_vector()
        rc_r, c_rc_r = xof.next_vector()

        # Left matrix: generation + row-wise multiplication overlap. The MAC
        # array is occupied for t row-streaming cycles; the pipelined adder
        # tree keeps draining for another 6 + log2 t cycles, during which the
        # next matrix may already start (the recorded window is the array
        # occupancy; `end` below is result availability).
        start_l = max(c_alpha_l, state_ready, matgen_free)
        end_l = start_l + mat_cycles
        matgen_free = start_l + matgen_occupancy
        windows.append(PhaseWindow("MatGen+MatMul", layer, start_l, start_l + matgen_occupancy))
        prod_l = field.mat_vec(generate_matrix(field, alpha_l), xl)

        # Right matrix follows on the same arrays.
        start_r = max(c_alpha_r, state_ready, matgen_free)
        end_r = start_r + mat_cycles
        matgen_free = start_r + matgen_occupancy
        windows.append(PhaseWindow("MatGen+MatMul", layer, start_r, start_r + matgen_occupancy))
        prod_r = field.mat_vec(generate_matrix(field, alpha_r), xr)

        # Round-constant additions on the shared adders.
        va_l_start = max(c_rc_l, end_l, adders_free)
        va_l_end = va_l_start + au.VECADD_CYCLES
        adders_free = va_l_end
        windows.append(PhaseWindow("VecAdd", layer, va_l_start, va_l_end))
        xl = field.vec_add(prod_l, rc_l)

        va_r_start = max(c_rc_r, end_r, adders_free)
        va_r_end = va_r_start + au.VECADD_CYCLES
        adders_free = va_r_end
        windows.append(PhaseWindow("VecAdd", layer, va_r_start, va_r_end))
        xr = field.vec_add(prod_r, rc_r)

        if layer < total_layers - 1:
            # Mid-round: Mix (3 adds) + S-box, overlapped with next XOF data.
            mix_start = max(va_l_end, va_r_end, adders_free)
            mix_end = mix_start + au.MIX_CYCLES
            adders_free = mix_end
            windows.append(PhaseWindow("Mix", layer, mix_start, mix_end))
            xl, xr = L.mix(field, xl, xr)

            full = np.concatenate([xl, xr])
            if layer < params.rounds - 1:
                sbox_cycles = au.feistel_cycles()
                full = L.feistel_sbox(field, full)
                name = "SBox(Feistel)"
            else:
                sbox_cycles = au.cube_cycles()
                full = L.cube_sbox(field, full)
                name = "SBox(Cube)"
            sbox_start = max(mix_end, muls_free)
            sbox_end = sbox_start + sbox_cycles
            muls_free = sbox_end
            windows.append(PhaseWindow(name, layer, sbox_start, sbox_end))
            xl, xr = full[:t], full[t:]
            state_ready = sbox_end
            end_of_block = sbox_end
        else:
            # Final layer: the paper charges a t-cycle tail for the last Mix.
            tail_start = max(va_l_end, va_r_end, adders_free)
            tail_end = tail_start + au.final_mix_tail_cycles(params)
            windows.append(PhaseWindow("Mix(final)", layer, tail_start, tail_end))
            xl, xr = L.mix(field, xl, xr)
            end_of_block = tail_end

    keystream = L.truncate(xl)

    report = CycleReport(
        params_name=params.name,
        t=t,
        nonce=nonce,
        counter=counter,
        core_name=core_cls.name,
        total_cycles=end_of_block,
        xof_last_word_cycle=xof.last_word_cycle,
        tail_cycles=end_of_block - xof.last_word_cycle,
        permutations=xof.permutations,
        words_consumed=xof.words_consumed,
        words_rejected=xof.words_rejected,
        windows=windows,
    )
    ok, msg = report.schedule_ok()
    if not ok:
        raise SimulationError(f"inconsistent schedule: {msg}")
    return keystream, report


def simulate_hoisted_affine(params: PastaParams) -> Tuple[List[PhaseWindow], int]:
    """Rotation schedule of one BSGS affine layer side with hoisting.

    Extension beyond the paper's datapath (like
    :func:`repro.hw.arith_units.rotate_stage_cycles`): the bs - 1 baby
    rotations share ONE ``KeySwitch(Decompose)`` window — the t-cycle row
    stream over the source digits — and each pays only the
    ``Rotate(Apply)`` multiplier pass + adder-tree fold. The G - 1 Horner
    giant steps rotate fresh accumulators, so they remain full
    ``Rotate+KeySwitch`` stages. Returns the serialized key-switch unit
    windows and the total cycles; per rotation the decompose/apply split
    reconstitutes the unhoisted stage exactly, so hoisting saves
    ``(bs - 2) * t`` cycles per side once bs > 2.
    """
    from repro.pasta.decrypt_circuit import bsgs_split

    t = params.t
    bs, giants = bsgs_split(t)
    windows: List[PhaseWindow] = []
    clock = 0
    if bs > 1:
        end = clock + au.rotate_decompose_cycles(t)
        windows.append(PhaseWindow("KeySwitch(Decompose)", 0, clock, end))
        clock = end
        for _ in range(bs - 1):
            end = clock + au.rotate_apply_cycles(t)
            windows.append(PhaseWindow("Rotate(Apply)", 0, clock, end))
            clock = end
    for _ in range(giants - 1):
        end = clock + au.rotate_stage_cycles(t)
        windows.append(PhaseWindow("Rotate+KeySwitch", 0, clock, end))
        clock = end
    return windows, clock


def paper_cycle_model(params: PastaParams, permutations: int) -> int:
    """The closed-form cycle count of paper Sec. IV-B.

    ``permutations * (21 + 5) + t`` — e.g. 60 * 26 + 32 = 1,592 for PASTA-4
    and 186 * 26 + 128 = 4,964 for PASTA-3 with the paper's average
    permutation counts.
    """
    return permutations * 26 + params.t
