"""XOF + rejection-sampling + DataGen front-end of the accelerator.

Models the units of paper Fig. 4 at transaction level:

* the SHAKE128 core emits one 64-bit word per cycle (timing from
  :mod:`repro.keccak.hw_model`, functional bytes from the real XOF);
* the rejection sampler masks each word and accepts/rejects it in the same
  cycle;
* the DataGen unit assembles accepted elements into t-element vectors in
  its ping-pong buffers, so a vector is "ready" the cycle its last element
  is accepted.

Because the words come from the same :func:`repro.pasta.xof.block_xof`
stream and the same :class:`repro.ff.sampling.RejectionSampler` as the
software cipher, the accepted values — and therefore the keystream — are
bit-identical to the reference implementation.
"""

from __future__ import annotations

from typing import Tuple, Type

import numpy as np

from repro.keccak.hw_model import KeccakCoreModel, OverlappedKeccakCore
from repro.pasta.params import PastaParams
from repro.pasta.xof import block_xof


class XofSamplerUnit:
    """Front-end producing timed, rejection-sampled field-element vectors."""

    def __init__(
        self,
        params: PastaParams,
        nonce: int,
        counter: int,
        core_cls: Type[KeccakCoreModel] = OverlappedKeccakCore,
    ):
        self.params = params
        self.shake = block_xof(params, nonce, counter)
        self.core = core_cls(self.shake)
        self._timed = self.core.timed_words()
        self.sampler = params.sampler
        self.words_consumed = 0
        self.words_rejected = 0
        self.last_word_cycle = 0

    def next_vector(self, min_value: int = 0) -> Tuple[np.ndarray, int]:
        """Sample the next t-element vector; returns (values, ready_cycle)."""
        t = self.params.t
        values = []
        while len(values) < t:
            tw = next(self._timed)
            self.words_consumed += 1
            self.last_word_cycle = tw.cycle
            candidate, ok = self.sampler.candidate(tw.word, min_value)
            if ok:
                values.append(candidate)
            else:
                self.words_rejected += 1
        return self.params.field.array(values), self.last_word_cycle

    @property
    def permutations(self) -> int:
        """Squeeze permutations behind the words consumed so far."""
        return -(-self.words_consumed // self.shake.words_per_permutation)
