"""Cycle reports produced by the accelerator model.

A :class:`CycleReport` records everything the paper's Sec. IV-B discusses
for one block encryption: total cycles, XOF/permutation counts, rejection
statistics, the per-layer schedule windows (Fig. 3), and derived wall-clock
times at each platform's clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Clock targets used in the paper (MHz).
FPGA_CLOCK_MHZ = 75.0
ASIC_CLOCK_MHZ = 1000.0
RISCV_CLOCK_MHZ = 100.0
CPU_CLOCK_MHZ = 2200.0  # Intel Xeon E5-2699 v4 of [9]


@dataclass(frozen=True)
class PhaseWindow:
    """One scheduled operation: which unit, which layer, [start, end) cycles."""

    unit: str
    layer: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class CycleReport:
    """Timing summary of one block encryption on the accelerator."""

    params_name: str
    t: int
    nonce: int
    counter: int
    core_name: str
    total_cycles: int
    xof_last_word_cycle: int
    tail_cycles: int
    permutations: int
    words_consumed: int
    words_rejected: int
    windows: List[PhaseWindow] = field(default_factory=list)

    # -- derived -------------------------------------------------------------

    def time_us(self, clock_mhz: float) -> float:
        """Wall-clock microseconds at the given clock frequency."""
        return self.total_cycles / clock_mhz

    @property
    def fpga_us(self) -> float:
        return self.time_us(FPGA_CLOCK_MHZ)

    @property
    def asic_us(self) -> float:
        return self.time_us(ASIC_CLOCK_MHZ)

    @property
    def rejection_rate(self) -> float:
        total = self.words_consumed
        return self.words_rejected / total if total else 0.0

    def unit_busy_cycles(self) -> Dict[str, int]:
        """Total busy cycles per unit (overlaps within a unit don't occur)."""
        busy: Dict[str, int] = {}
        for w in self.windows:
            busy[w.unit] = busy.get(w.unit, 0) + w.duration
        return busy

    def unit_utilization(self) -> Dict[str, float]:
        """Busy fraction of the total runtime, per unit."""
        if self.total_cycles == 0:
            return {}
        return {u: b / self.total_cycles for u, b in self.unit_busy_cycles().items()}

    def windows_for(self, unit: str) -> List[PhaseWindow]:
        return [w for w in self.windows if w.unit == unit]

    def render_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the schedule windows (a Fig.-3 visual aid).

        One row per unit; ``#`` marks busy cycles scaled to ``width``
        columns. Useful when inspecting why a layer stalls.
        """
        if not self.windows or self.total_cycles == 0:
            return "(empty schedule)"
        units = []
        for w in self.windows:
            if w.unit not in units:
                units.append(w.unit)
        scale = width / self.total_cycles
        label_width = max(len(u) for u in units) + 1
        lines = [
            f"{'cycles':<{label_width}}0{' ' * (width - len(str(self.total_cycles)) - 1)}"
            f"{self.total_cycles}"
        ]
        for unit in units:
            row = [" "] * width
            for w in self.windows:
                if w.unit != unit:
                    continue
                start = min(width - 1, int(w.start * scale))
                end = min(width, max(start + 1, int(w.end * scale)))
                for i in range(start, end):
                    row[i] = "#"
            lines.append(f"{unit:<{label_width}}{''.join(row)}")
        return "\n".join(lines)

    def schedule_ok(self) -> Tuple[bool, str]:
        """Check no unit runs two windows at once (schedule consistency)."""
        by_unit: Dict[str, List[PhaseWindow]] = {}
        for w in self.windows:
            by_unit.setdefault(w.unit, []).append(w)
        for unit, ws in by_unit.items():
            ws = sorted(ws, key=lambda w: w.start)
            for a, b in zip(ws, ws[1:]):
                if b.start < a.end:
                    return False, f"unit {unit}: window {b} overlaps {a}"
        return True, ""
