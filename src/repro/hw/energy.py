"""Energy model: per-block and per-element energy across platforms.

The paper claims "several orders better performance and energy efficiency
than software and prior client-side PKE accelerators" and reports a 1.2 W
maximum for the ASIC design. This module quantifies the claim:

* ASIC power is the paper's published 1.2 W (worst case, 1 GHz);
* the CPU baseline uses the Xeon E5-2699 v4's 145 W TDP (public spec);
* FPGA and SoC powers are stated assumptions (typical Artix-7 dynamic
  power at this utilization, and a low-power 130 nm SoC at 100 MHz),
  clearly surfaced in the generated notes.

Energy per block = power x latency; per element divides by t.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.cpu_pasta import cpu_baseline
from repro.pasta.params import PastaParams

#: Platform power assumptions in watts (sources in the module docstring).
PLATFORM_POWER_W = {
    "ASIC (7/28nm, 1 GHz)": 1.2,  # published (Sec. IV-A)
    "FPGA (Artix-7, 75 MHz)": 2.0,  # assumption: typical mid-utilization Artix-7
    "RISC-V SoC (130nm, 100 MHz)": 0.2,  # assumption: low-power edge SoC
    "CPU (Xeon E5-2699 v4)": 145.0,  # TDP, public spec
}


@dataclass(frozen=True)
class EnergyPoint:
    """Energy of one block encryption on one platform."""

    platform: str
    power_w: float
    latency_us: float
    elements: int

    @property
    def energy_uj_per_block(self) -> float:
        return self.power_w * self.latency_us

    @property
    def energy_uj_per_element(self) -> float:
        return self.energy_uj_per_block / self.elements


def energy_table(
    params: PastaParams,
    fpga_us: float,
    asic_us: float,
    riscv_us: float,
) -> List[EnergyPoint]:
    """Energy points for every platform, given measured latencies."""
    cpu = cpu_baseline(params)
    return [
        EnergyPoint("ASIC (7/28nm, 1 GHz)", PLATFORM_POWER_W["ASIC (7/28nm, 1 GHz)"], asic_us, params.t),
        EnergyPoint("FPGA (Artix-7, 75 MHz)", PLATFORM_POWER_W["FPGA (Artix-7, 75 MHz)"], fpga_us, params.t),
        EnergyPoint(
            "RISC-V SoC (130nm, 100 MHz)",
            PLATFORM_POWER_W["RISC-V SoC (130nm, 100 MHz)"],
            riscv_us,
            params.t,
        ),
        EnergyPoint(
            "CPU (Xeon E5-2699 v4)",
            PLATFORM_POWER_W["CPU (Xeon E5-2699 v4)"],
            cpu.time_us,
            params.t,
        ),
    ]


def energy_advantage_vs_cpu(points: List[EnergyPoint]) -> dict:
    """Energy-efficiency factor of each platform over the CPU baseline."""
    cpu = next(p for p in points if p.platform.startswith("CPU"))
    return {
        p.platform: cpu.energy_uj_per_element / p.energy_uj_per_element
        for p in points
        if p is not cpu
    }
