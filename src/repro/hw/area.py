"""FPGA / ASIC area and power models (paper Table I, Fig. 7, Sec. IV-A).

Structure of the model:

* **DSP counts are structural** (exact): the design instantiates two sets
  of t modular multipliers; one ω x ω multiplier tiles onto
  ``ceil(ω/25) * ceil(ω/18)`` DSP48E1 slices. This reproduces every DSP
  figure of Table I from first principles (64 / 256 / 256 / 576).
* **LUT/FF are calibrated**: the four synthesized configurations of
  Table I are anchors (reported exactly); other (t, ω) points use a
  structural fit ``K_keccak + t * (c1 ω + c2 ω^2)`` whose coefficients are
  derived from the PASTA-4 anchor rows.
* **ASIC areas** anchor to the paper's 0.24 mm^2 (28 nm) / 0.03 mm^2 (7 nm)
  for PASTA-4 ω=17, with the stated x2.1 / x4.3 bit-width scaling, the
  ~3x PASTA-3 : PASTA-4 area ratio of Sec. IV-B, and the 1.8 mm^2
  (4.6 mm^2 with Ibex) RISC-V SoC on 130 nm.
* **Module breakdown** follows Fig. 7 (values re-normalized; the printed
  pie labels are partially illegible in the source scan, noted in
  DESIGN.md Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict

from repro.errors import ParameterError
from repro.pasta.params import PASTA_3, PASTA_4, PastaParams

# -- target devices ----------------------------------------------------------

#: Artix-7 AC701 (xc7a200t) resources, from Sec. IV-A.
ARTIX7_LUT = 134_600
ARTIX7_FF = 269_200
ARTIX7_DSP = 740
ARTIX7_BRAM = 365


@dataclass(frozen=True)
class FpgaArea:
    """LUT/FF/DSP/BRAM consumption with device-utilization percentages."""

    lut: int
    ff: int
    dsp: int
    bram: int = 0  #: the design needs no BRAM (Table I note)

    @property
    def lut_pct(self) -> float:
        return 100.0 * self.lut / ARTIX7_LUT

    @property
    def ff_pct(self) -> float:
        return 100.0 * self.ff / ARTIX7_FF

    @property
    def dsp_pct(self) -> float:
        return 100.0 * self.dsp / ARTIX7_DSP


# -- DSP model (structural, exact) --------------------------------------------


def dsp_per_multiplier(omega: int) -> int:
    """DSP48E1 tiles for one omega x omega multiplier (25x18 slices)."""
    return ceil(omega / 25) * ceil(omega / 18)


def dsp_count(params: PastaParams) -> int:
    """Two sets of t multipliers; each costs ``dsp_per_multiplier(omega)``."""
    return 2 * params.t * dsp_per_multiplier(params.modulus_bits)


# -- LUT/FF model --------------------------------------------------------------

#: Published Table I anchors: (t, omega) -> (LUT, FF).
_TABLE1_ANCHORS: Dict[tuple, tuple] = {
    (128, 17): (65_468, 36_275),
    (32, 17): (23_736, 11_132),
    (32, 33): (42_330, 20_783),
    (32, 54): (67_324, 32_711),
}

# Structural fit over the PASTA-4 anchor rows (see module docstring):
# LUT(t, omega) = K + t * (C1 * omega + C2 * omega^2)
_LUT_K = 4_401.0
_LUT_C1 = 35.14
_LUT_C2 = 0.02363

# FF fit, same shape (Keccak double buffer dominates the constant: ~2x1600
# state bits + control): derived from the PASTA-4 rows.
_FF_K = 3_877.0
_FF_C1 = 13.15
_FF_C2 = 0.0258


def _lut_estimate(t: int, omega: int) -> int:
    return round(_LUT_K + t * (_LUT_C1 * omega + _LUT_C2 * omega * omega))


def _ff_estimate(t: int, omega: int) -> int:
    return round(_FF_K + t * (_FF_C1 * omega + _FF_C2 * omega * omega))


def fpga_area(params: PastaParams) -> FpgaArea:
    """FPGA area for a parameter set: anchored if published, else estimated."""
    key = (params.t, params.modulus_bits)
    dsp = dsp_count(params)
    if key in _TABLE1_ANCHORS:
        lut, ff = _TABLE1_ANCHORS[key]
        return FpgaArea(lut=lut, ff=ff, dsp=dsp)
    return FpgaArea(lut=_lut_estimate(*key), ff=_ff_estimate(*key), dsp=dsp)


# -- ASIC model -----------------------------------------------------------------

#: Paper Sec. IV-A: PASTA-4 omega=17 synthesis results.
ASIC_AREA_MM2 = {"28nm": 0.24, "7nm": 0.03}
ASIC_MAX_POWER_W = 1.2
ASIC_CLOCK_MHZ = 1000.0

#: Area multiplier vs the 17-bit datapath (paper: "~2.1x and ~4.3x").
_BITWIDTH_AREA_SCALE = {17: 1.0, 33: 2.1, 54: 4.3}

#: PASTA-3 consumes ~3x the area of PASTA-4 (Sec. IV-B discussion).
_PASTA3_AREA_RATIO = 65_468 / 23_736  # ~2.76, from the Table I LUT ratio

#: RISC-V SoC areas (Sec. IV-A, 130 nm).
SOC_AREA_MM2 = 1.8
SOC_AREA_WITH_IBEX_MM2 = 4.6
SOC_CLOCK_MHZ = 100.0


def asic_area_mm2(params: PastaParams, node: str) -> float:
    """ASIC area in mm^2 on '28nm' or '7nm' for a parameter set."""
    if node not in ASIC_AREA_MM2:
        raise ParameterError(f"unknown node {node!r}; pick one of {sorted(ASIC_AREA_MM2)}")
    omega = params.modulus_bits
    if omega not in _BITWIDTH_AREA_SCALE:
        raise ParameterError(f"no published scaling for omega={omega}")
    base = ASIC_AREA_MM2[node] * _BITWIDTH_AREA_SCALE[omega]
    if params.t == PASTA_3.t:
        base *= _PASTA3_AREA_RATIO
    elif params.t != PASTA_4.t:
        base *= params.t / PASTA_4.t  # linear-in-t extrapolation
    return base


# -- Fig. 7 module breakdown ------------------------------------------------------

#: Approximate module shares (percent) read from Fig. 7 (see DESIGN.md Sec. 5).
FPGA_BREAKDOWN = {
    "MatGen": 33.3,
    "MatMul": 21.1,
    "DataGen(SHAKE)": 17.4,
    "ModMul": 9.5,
    "ModAdd": 4.8,
    "MixCol": 1.4,
    "Remaining": 12.5,
}

ASIC_BREAKDOWN = {
    "MatGen": 19.2,
    "MatMul": 16.2,
    "DataGen(SHAKE)": 15.4,
    "ModMul": 9.5,
    "ModAdd": 9.1,
    "MixCol": 4.4,
    "Remaining": 26.2,
}


def module_breakdown(platform: str) -> Dict[str, float]:
    """Module-wise area shares (percent, summing to 100) for a platform."""
    table = {"fpga": FPGA_BREAKDOWN, "asic": ASIC_BREAKDOWN}.get(platform.lower())
    if table is None:
        raise ParameterError(f"platform must be 'fpga' or 'asic', got {platform!r}")
    total = sum(table.values())
    return {k: 100.0 * v / total for k, v in table.items()}


def module_areas(params: PastaParams, platform: str) -> Dict[str, float]:
    """Absolute per-module area (LUTs for FPGA, mm^2 for 28 nm ASIC)."""
    shares = module_breakdown(platform)
    if platform.lower() == "fpga":
        total = fpga_area(params).lut
    else:
        total = asic_area_mm2(params, "28nm")
    return {k: total * pct / 100.0 for k, pct in shares.items()}


def area_time_product(params: PastaParams, cycles: int) -> float:
    """Area-time product (LUT x us at the 75 MHz FPGA clock).

    Sec. IV-B uses this metric to argue PASTA-4 beats PASTA-3 for clients.
    """
    return fpga_area(params).lut * (cycles / 75.0)
