"""Latency constants and formulas of the arithmetic units (paper Sec. III-C/D).

The datapath instantiates:

* **two sets of t modular multipliers** — one dedicated to MatGen (as MAC
  units), one to MatMul — so matrix generation and matrix-vector
  multiplication finish together inside the t-cycle XOF window;
* **t modular adders**, shared by RC-add, Mix, and the S-boxes;
* a **pipelined adder tree** of depth ceil(log2 t) that folds each row's
  products into the dot-product result.

Latency of the combined MatGen+MatMul stage is ``6 + t + log2(t)`` cycles
(paper Sec. III-C): 6 cycles of pipeline fill between the MAC and the
matrix stages, t cycles of row streaming, log2(t) cycles of adder-tree
drain. Vector addition "barely consumes three clock cycles" (Sec. III-D);
Mix is realized as three additions.
"""

from __future__ import annotations

from math import ceil, log2

from repro.pasta.params import PastaParams

#: Pipeline-fill overhead of the MatGen/MatMul macro stage (paper: "6 + t + log2 t").
MAT_PIPELINE_FILL = 6

#: Latency of one pipelined modular multiplier (multiply + add-shift reduce).
MUL_LATENCY = 3

#: Latency of a full-vector modular addition through the t adder units.
VECADD_CYCLES = 3

#: Mix = three chained vector additions computed on the shared adders.
MIX_CYCLES = 3


def adder_tree_depth(t: int) -> int:
    """Depth of the pipelined adder tree folding t products."""
    return ceil(log2(t))


def mat_stage_cycles(t: int) -> int:
    """MatGen or MatMul macro-stage latency: ``6 + t + log2 t``."""
    return MAT_PIPELINE_FILL + t + adder_tree_depth(t)


def matgen_row_cycles(t: int) -> int:
    """Cycles during which the MatGen MAC array is occupied streaming rows."""
    return t


def rotate_stage_cycles(t: int) -> int:
    """Rotate+KeySwitch macro-stage latency: ``MUL_LATENCY + t + log2 t``.

    Extension beyond the paper's datapath: the BSGS homomorphic affine
    (ROADMAP item 3) adds slot rotations as a first-class operation, the
    way BASALISC treats automorphisms as pipeline ops. The automorphism
    itself is wiring (an index permutation); the cost is the key switch —
    modeled like one multiplier pass over the t-element row stream plus the
    adder-tree fold of the digit products.
    """
    return MUL_LATENCY + t + adder_tree_depth(t)


def rotate_decompose_cycles(t: int) -> int:
    """Digit-decomposition half of a hoisted rotation: the t-cycle row stream.

    Halevi-Shoup hoisting splits Rotate+KeySwitch into a decomposition that
    streams the t-element row once (shared by every rotation of the batch)
    and a per-rotation apply. The split is exact:
    ``rotate_decompose_cycles(t) + rotate_apply_cycles(t) ==
    rotate_stage_cycles(t)``.
    """
    return t


def rotate_apply_cycles(t: int) -> int:
    """Per-rotation apply half of a hoisted rotation: multiplier pass + fold."""
    return MUL_LATENCY + adder_tree_depth(t)


def feistel_cycles() -> int:
    """Feistel S-box: one (pipelined) multiplication batch + one addition."""
    return MUL_LATENCY + 1


def cube_cycles() -> int:
    """Cube S-box: square then multiply through the shared multipliers."""
    return 2 * MUL_LATENCY


def final_mix_tail_cycles(params: PastaParams) -> int:
    """Tail after the last XOF word: the paper charges t cycles for the
    "last remaining Mix operation" (Sec. IV-B), which covers the final
    RC-add + Mix + output drain of the t-element keystream."""
    return params.t


def multipliers_instantiated(params: PastaParams) -> int:
    """Two sets of t modular multipliers (MatGen MACs + MatMul)."""
    return 2 * params.t


def adders_instantiated(params: PastaParams) -> int:
    """t shared modular adders (RC add / Mix / S-box)."""
    return params.t
