"""Cycle models of the hardware SHAKE128 core (paper Secs. III-A, IV-B).

The functional output always comes from the real :class:`~repro.keccak.shake.Shake`
instance, so downstream consumers receive bit-exact XOF data; the models
only attach *timing* to each squeezed 64-bit word.

Two implementations are modeled:

* **Naive core** — squeeze and permutation are serial: each batch of 21
  words costs 24 cc (permutation) + 21 cc (squeeze) = 45 cc. The paper
  notes this "almost doubles" the cycle count.
* **Overlapped core** (the design actually used, from KaLi [14]) — the next
  permutation runs in parallel with the squeeze at the price of a second
  1600-bit state buffer; only a 5 cc gap separates two squeezes, so a
  batch costs 21 + 5 = 26 cc. Sixty batches therefore cost
  60 * (21 + 5) = 1,560 cc, matching the paper's PASTA-4 arithmetic.

Both models charge the batch overhead uniformly from cycle 0 (the paper's
accounting folds the initial absorb permutation into the setup phase; see
Sec. IV-B where PASTA-4 is exactly 60 batches * 26 cc + final Mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.keccak.shake import Shake

#: Keccak-f[1600] rounds == clock cycles per permutation in the hardware.
PERMUTATION_CYCLES = 24

#: Squeeze gap of the overlapped (double-buffered) core between two batches.
OVERLAPPED_GAP_CYCLES = 5

#: 64-bit words squeezed per permutation at SHAKE128's 1344-bit rate.
WORDS_PER_BATCH = 21


@dataclass(frozen=True)
class TimedWord:
    """One squeezed 64-bit word and the clock cycle it becomes available."""

    cycle: int
    word: int


class KeccakCoreModel:
    """Base class: turns a Shake instance into a timed word stream."""

    #: cycles of dead time before each 21-word batch starts emitting
    batch_overhead: int = 0
    name: str = "abstract"

    def __init__(self, shake: Shake):
        self.shake = shake
        self.words_emitted = 0

    def batch_cycles(self) -> int:
        """Total cycles consumed per 21-word batch."""
        return self.batch_overhead + WORDS_PER_BATCH

    def cycle_of_word(self, index: int) -> int:
        """Cycle at which the ``index``-th word (0-based) is available."""
        batch, offset = divmod(index, WORDS_PER_BATCH)
        return batch * self.batch_cycles() + self.batch_overhead + offset + 1

    def cycles_for_words(self, count: int) -> int:
        """Cycle at which ``count`` words have all been emitted."""
        if count <= 0:
            return 0
        return self.cycle_of_word(count - 1)

    def timed_words(self) -> Iterator[TimedWord]:
        """Infinite stream of (cycle, word) pairs."""
        raw = self.shake.words()
        while True:
            index = self.words_emitted
            word = next(raw)
            self.words_emitted = index + 1
            yield TimedWord(cycle=self.cycle_of_word(index), word=word)

    @property
    def permutations_performed(self) -> int:
        """Squeeze permutations behind the words emitted so far."""
        return -(-self.words_emitted // WORDS_PER_BATCH)  # ceil div


class NaiveKeccakCore(KeccakCoreModel):
    """Serial permutation-then-squeeze core: 24 + 21 = 45 cc per batch."""

    batch_overhead = PERMUTATION_CYCLES
    name = "naive"


class OverlappedKeccakCore(KeccakCoreModel):
    """Double-buffered core squeezing in parallel with the permutation.

    21 + 5 = 26 cc per batch; requires two 1600-bit state registers
    (charged by the area model in :mod:`repro.hw.area`).
    """

    batch_overhead = OVERLAPPED_GAP_CYCLES
    name = "overlapped"


class UnrolledNaiveKeccakCore(KeccakCoreModel):
    """2x round-unrolled serial core: 12 cc permutation + 21 cc squeeze.

    The paper deliberately avoids round-unrolling so the design fits small
    client FPGAs (Sec. III). This model quantifies the decision: unrolling
    costs roughly double the Keccak round logic yet a batch still takes
    12 + 21 = 33 cc — *worse* than the overlapped core's 26 cc, because the
    squeeze, not the permutation, is the critical path once permutations
    overlap squeezes. See the ablation benchmark.
    """

    batch_overhead = PERMUTATION_CYCLES // 2
    name = "unrolled-naive"
