"""Keccak-f[1600] permutation, implemented from the FIPS 202 specification.

The state is a flat list of 25 lanes (64-bit integers) indexed ``x + 5*y``.
Round constants and rotation offsets are *derived* (LFSR / triangular-number
walk) rather than transcribed, so the only trusted inputs are the spec's
generation rules; known-answer tests validate the result against
``hashlib``'s SHA-3 implementation.

The hardware accelerator in the paper runs one Keccak round per clock
cycle (24 cc per permutation); :mod:`repro.keccak.hw_model` attaches that
timing to this functional core.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.utils.bits import rotl64

KECCAK_ROUNDS = 24
_MASK64 = (1 << 64) - 1


def _round_constants() -> List[int]:
    """Generate the 24 iota round constants via the rc(t) LFSR (FIPS 202 3.2.5)."""

    def rc_bit(t: int) -> int:
        r = 0x01
        for _ in range(t % 255):
            r = ((r << 1) ^ ((r >> 7) * 0x71)) & 0xFF
        return r & 1

    constants = []
    for round_index in range(KECCAK_ROUNDS):
        value = 0
        for j in range(7):
            if rc_bit(j + 7 * round_index):
                value |= 1 << ((1 << j) - 1)
        constants.append(value)
    return constants


def _rotation_offsets() -> List[int]:
    """Generate the rho rotation offsets via the (x, y) -> (y, 2x+3y) walk."""
    offsets = [0] * 25
    x, y = 1, 0
    for t in range(24):
        offsets[x + 5 * y] = ((t + 1) * (t + 2) // 2) % 64
        x, y = y, (2 * x + 3 * y) % 5
    return offsets


ROUND_CONSTANTS = _round_constants()
RHO_OFFSETS = _rotation_offsets()


def keccak_round(state: List[int], round_constant: int) -> List[int]:
    """One Keccak round: theta, rho, pi, chi, iota. Returns a new state list."""
    # theta
    c = [state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20] for x in range(5)]
    d = [c[(x - 1) % 5] ^ rotl64(c[(x + 1) % 5], 1) for x in range(5)]
    a = [state[i] ^ d[i % 5] for i in range(25)]
    # rho + pi
    b = [0] * 25
    for x in range(5):
        for y in range(5):
            b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl64(a[x + 5 * y], RHO_OFFSETS[x + 5 * y])
    # chi
    out = [0] * 25
    for y in range(5):
        row = 5 * y
        for x in range(5):
            out[row + x] = b[row + x] ^ ((~b[row + (x + 1) % 5] & _MASK64) & b[row + (x + 2) % 5])
    # iota
    out[0] ^= round_constant
    return out


def keccak_f1600(state: Sequence[int]) -> List[int]:
    """Apply the full 24-round Keccak-f[1600] permutation."""
    if len(state) != 25:
        raise ValueError(f"Keccak state must have 25 lanes, got {len(state)}")
    current = list(state)
    for constant in ROUND_CONSTANTS:
        current = keccak_round(current, constant)
    return current
