"""Batch-vectorized Keccak-f[1600]: N sponge states permuted at once.

The scalar permutation (:mod:`repro.keccak.permutation`) walks 25 Python
integers through theta/rho/pi/chi/iota one lane at a time — fine for one
block, hopeless for a keystream server. This module holds the *same*
permutation expressed over a ``(N, 25)`` ``uint64`` numpy array: every
xor, rotation, and chi-step broadcasts across the batch axis, so one pass
through the 24 rounds advances N independent sponges. This is the software
analogue of the paper's hardware overlap — the accelerator hides XOF
latency behind MatMul; we hide Python interpreter overhead behind numpy's
SIMD loops (paper Sec. IV-B; same trick Presto/DNA-HHE use for HHE-cipher
throughput on CPUs).

Bit-exactness is non-negotiable: ``keccak_f1600_batch`` must agree with
:func:`repro.keccak.permutation.keccak_f1600` lane-for-lane (hypothesis
tests cross-check both against ``hashlib``'s SHAKE implementations).

Lane layout matches FIPS 202: index ``x + 5*y`` along the last axis, so a
``(N, 25)`` array reshaped to ``(N, 5, 5)`` is indexed ``[lane, y, x]``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.keccak.permutation import KECCAK_ROUNDS, RHO_OFFSETS, ROUND_CONSTANTS

__all__ = [
    "keccak_f1600_batch",
    "BatchedShake",
    "batched_shake128",
]

_RC = np.array(ROUND_CONSTANTS, dtype=np.uint64)

# rho+pi as one gather: target lane i takes source lane _PI_SRC[i] rotated
# left by _PI_ROT[i].  b[y + 5*((2x+3y)%5)] = rotl(a[x+5y], rho[x+5y]).
_PI_SRC = np.zeros(25, dtype=np.intp)
_PI_ROT = np.zeros(25, dtype=np.uint64)
for _x in range(5):
    for _y in range(5):
        _src = _x + 5 * _y
        _dst = _y + 5 * ((2 * _x + 3 * _y) % 5)
        _PI_SRC[_dst] = _src
        _PI_ROT[_dst] = RHO_OFFSETS[_src]
# Complementary right-shift counts; (64 - r) % 64 keeps the r = 0 lane legal
# (shifting a uint64 by 64 is undefined in the underlying C loop).
_PI_ROT_C = (np.uint64(64) - _PI_ROT) % np.uint64(64)

_ONE = np.uint64(1)
_SIXTY_THREE = np.uint64(63)

# Cyclic x-index gathers (cheaper than np.roll's Python-side dispatch).
_X_M1 = np.array([(x - 1) % 5 for x in range(5)], dtype=np.intp)
_X_P1 = np.array([(x + 1) % 5 for x in range(5)], dtype=np.intp)
_X_P2 = np.array([(x + 2) % 5 for x in range(5)], dtype=np.intp)


def _rotl_batch(lanes: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Per-lane rotate-left with precomputed (left, right) shift counts."""
    return (lanes << left) | (lanes >> right)


def keccak_f1600_batch(states: np.ndarray) -> np.ndarray:
    """Apply Keccak-f[1600] to every row of a ``(N, 25)`` uint64 array.

    Returns a new array; the input is not modified. Row ``n`` of the result
    equals ``keccak_f1600(states[n])`` exactly.
    """
    s = np.asarray(states, dtype=np.uint64)
    if s.ndim != 2 or s.shape[1] != 25:
        raise ValueError(f"batched Keccak state must have shape (N, 25), got {s.shape}")
    s = s.copy()
    n = s.shape[0]
    grid = s.reshape(n, 5, 5)  # [lane, y, x]
    for rc in _RC:
        # theta: column parities, broadcast back over y.
        c = grid[:, 0] ^ grid[:, 1] ^ grid[:, 2] ^ grid[:, 3] ^ grid[:, 4]  # (N, 5) by x
        d = c[:, _X_M1] ^ _rotl_batch(c[:, _X_P1], _ONE, _SIXTY_THREE)
        grid ^= d[:, None, :]
        # rho + pi: one gather + per-lane rotation.
        b = _rotl_batch(s[:, _PI_SRC], _PI_ROT, _PI_ROT_C)
        # chi: row-wise nonlinear step along x.
        bg = b.reshape(n, 5, 5)
        s = (bg ^ (~bg[:, :, _X_P1] & bg[:, :, _X_P2])).reshape(n, 25)
        # iota
        s[:, 0] ^= rc
        grid = s.reshape(n, 5, 5)
    return s


class BatchedShake:
    """N independent SHAKE XOF streams squeezed in lockstep.

    Each row is seeded with its own message; all messages must fit in a
    single rate block (true for every PASTA per-block seed, which is 43
    bytes against SHAKE128's 168-byte rate). The squeeze schedule per row
    is identical to the scalar :class:`repro.keccak.shake.Shake`, so row
    ``n``'s word stream is bit-exact with ``shake128(seeds[n]).words()``.

    Parameters
    ----------
    rate_bytes:
        Sponge rate (168 for SHAKE128).
    seeds:
        One short byte string per batch row.
    """

    def __init__(self, rate_bytes: int, seeds: Sequence[bytes]):
        if not 0 < rate_bytes < 200 or rate_bytes % 8 != 0:
            raise ValueError(f"rate must be a positive multiple of 8 below 200, got {rate_bytes}")
        if not seeds:
            raise ValueError("at least one seed is required")
        self.rate_bytes = rate_bytes
        self.rate_words = rate_bytes // 8
        self.n = len(seeds)
        blocks = np.zeros((self.n, 200), dtype=np.uint8)
        for i, seed in enumerate(seeds):
            if len(seed) >= rate_bytes:
                raise ValueError(
                    f"seed {i} has {len(seed)} bytes; single-block absorb requires"
                    f" < {rate_bytes}"
                )
            blocks[i, : len(seed)] = np.frombuffer(seed, dtype=np.uint8)
            blocks[i, len(seed)] = 0x1F  # SHAKE domain suffix + pad10*1 start
            blocks[i, rate_bytes - 1] ^= 0x80  # pad10*1 end
        # Absorb = xor into the all-zero state, then one permutation.
        self._state = keccak_f1600_batch(blocks.view("<u8").reshape(self.n, 25))
        self.permutation_count = 1
        self._emitted_blocks = 1

    def squeeze_words_block(self) -> np.ndarray:
        """Return the next ``(N, rate_words)`` matrix of 64-bit output words.

        The first call returns the words exposed by the absorb permutation;
        each later call costs exactly one more batched permutation — the
        same cadence as the scalar sponge (21 words per permutation at the
        SHAKE128 rate).
        """
        if self._emitted_blocks > self.permutation_count:
            self._state = keccak_f1600_batch(self._state)
            self.permutation_count += 1
        self._emitted_blocks += 1
        return self._state[:, : self.rate_words].copy()


def batched_shake128(seeds: Sequence[bytes]) -> BatchedShake:
    """SHAKE128 lockstep batch (rate 1344 bits — PASTA's XOF)."""
    from repro.keccak.shake import SHAKE128_RATE_BYTES

    return BatchedShake(SHAKE128_RATE_BYTES, seeds)


def keccak_f1600_many(states: Sequence[Sequence[int]]) -> List[List[int]]:
    """Convenience wrapper: batch-permute plain Python lane lists."""
    arr = np.array(
        [[lane & 0xFFFFFFFFFFFFFFFF for lane in state] for state in states], dtype=np.uint64
    )
    return [[int(lane) for lane in row] for row in keccak_f1600_batch(arr)]
