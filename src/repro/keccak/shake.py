"""SHAKE128 / SHAKE256 extendable-output functions.

These are thin wrappers over :class:`repro.keccak.sponge.KeccakSponge` with
the XOF domain suffix 0x1F. :meth:`Shake.words` exposes the output as a
stream of 64-bit little-endian words — exactly the granularity at which the
paper's hardware squeezes the state (21 words per permutation at rate
1344 bits).
"""

from __future__ import annotations

from typing import Iterator

from repro.keccak.sponge import KeccakSponge

SHAKE128_RATE_BYTES = 168  # 1344-bit rate -> 21 64-bit words per squeeze
SHAKE256_RATE_BYTES = 136


class Shake:
    """Incremental SHAKE XOF."""

    def __init__(self, rate_bytes: int, data: bytes = b""):
        self.sponge = KeccakSponge(rate_bytes, domain_suffix=0x1F)
        if data:
            self.sponge.absorb(data)

    def absorb(self, data: bytes) -> None:
        self.sponge.absorb(data)

    def read(self, count: int) -> bytes:
        """Squeeze ``count`` bytes (finalizes on first call)."""
        return self.sponge.squeeze(count)

    def words(self) -> Iterator[int]:
        """Infinite stream of 64-bit little-endian output words."""
        while True:
            yield int.from_bytes(self.sponge.squeeze(8), "little")

    @property
    def permutation_count(self) -> int:
        """Keccak-f permutations performed so far (absorb + squeeze)."""
        return self.sponge.permutation_count

    @property
    def words_per_permutation(self) -> int:
        return self.sponge.rate_bytes // 8


def shake128(data: bytes = b"") -> Shake:
    """SHAKE128 instance (rate 1344 bits, as used by PASTA)."""
    return Shake(SHAKE128_RATE_BYTES, data)


def shake256(data: bytes = b"") -> Shake:
    """SHAKE256 instance (rate 1088 bits)."""
    return Shake(SHAKE256_RATE_BYTES, data)


def sha3_256(data: bytes) -> bytes:
    """SHA3-256 digest (used only for cross-validating the permutation)."""
    sponge = KeccakSponge(136, domain_suffix=0x06)
    sponge.absorb(data)
    return sponge.squeeze(32)


def sha3_512(data: bytes) -> bytes:
    """SHA3-512 digest (used only for cross-validating the permutation)."""
    sponge = KeccakSponge(72, domain_suffix=0x06)
    sponge.absorb(data)
    return sponge.squeeze(64)
