"""Keccak / SHAKE substrate: functional core plus hardware cycle models."""

from repro.keccak.hw_model import (
    OVERLAPPED_GAP_CYCLES,
    PERMUTATION_CYCLES,
    WORDS_PER_BATCH,
    KeccakCoreModel,
    NaiveKeccakCore,
    OverlappedKeccakCore,
    TimedWord,
    UnrolledNaiveKeccakCore,
)
from repro.keccak.permutation import KECCAK_ROUNDS, keccak_f1600, keccak_round
from repro.keccak.shake import (
    SHAKE128_RATE_BYTES,
    SHAKE256_RATE_BYTES,
    Shake,
    sha3_256,
    sha3_512,
    shake128,
    shake256,
)
from repro.keccak.sponge import KeccakSponge
from repro.keccak.vectorized import BatchedShake, batched_shake128, keccak_f1600_batch

__all__ = [
    "KECCAK_ROUNDS",
    "OVERLAPPED_GAP_CYCLES",
    "PERMUTATION_CYCLES",
    "SHAKE128_RATE_BYTES",
    "SHAKE256_RATE_BYTES",
    "WORDS_PER_BATCH",
    "BatchedShake",
    "KeccakCoreModel",
    "KeccakSponge",
    "NaiveKeccakCore",
    "OverlappedKeccakCore",
    "Shake",
    "TimedWord",
    "UnrolledNaiveKeccakCore",
    "batched_shake128",
    "keccak_f1600",
    "keccak_f1600_batch",
    "keccak_round",
    "sha3_256",
    "sha3_512",
    "shake128",
    "shake256",
]
