"""Keccak sponge construction (absorb / pad / squeeze).

Implements the pad10*1 rule with a caller-supplied domain-separation suffix
so the same engine yields SHAKE128/256 (suffix 0x1F) and SHA-3 (0x06).
"""

from __future__ import annotations

from repro.keccak.permutation import keccak_f1600
from repro.utils.bits import bytes_to_words_le, words_to_bytes_le


class KeccakSponge:
    """Incremental sponge over Keccak-f[1600].

    Parameters
    ----------
    rate_bytes:
        The rate in bytes (168 for SHAKE128, 136 for SHAKE256/SHA3-256).
    domain_suffix:
        Domain-separation byte prepended to the 10*1 padding (0x1F for
        SHAKE, 0x06 for SHA-3).
    """

    def __init__(self, rate_bytes: int, domain_suffix: int):
        if not 0 < rate_bytes < 200 or rate_bytes % 8 != 0:
            raise ValueError(f"rate must be a positive multiple of 8 below 200, got {rate_bytes}")
        self.rate_bytes = rate_bytes
        self.domain_suffix = domain_suffix
        self._state = [0] * 25
        self._buffer = bytearray()
        self._squeezing = False
        self._squeeze_pos = 0
        self._squeeze_block = b""
        #: Number of Keccak-f permutations performed (for the cycle models).
        self.permutation_count = 0

    def _permute(self) -> None:
        self._state = keccak_f1600(self._state)
        self.permutation_count += 1

    def _absorb_block(self, block: bytes) -> None:
        words = bytes_to_words_le(block + b"\x00" * (200 - len(block)))
        self._state = [s ^ w for s, w in zip(self._state, words)]
        self._permute()

    def absorb(self, data: bytes) -> None:
        """Feed message bytes into the sponge (before any squeeze)."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing has started")
        self._buffer += data
        while len(self._buffer) >= self.rate_bytes:
            self._absorb_block(bytes(self._buffer[: self.rate_bytes]))
            del self._buffer[: self.rate_bytes]

    def _finalize(self) -> None:
        block = bytearray(self._buffer)
        block.append(self.domain_suffix)
        block += b"\x00" * (self.rate_bytes - len(block))
        block[-1] |= 0x80
        self._absorb_block(bytes(block))
        self._buffer.clear()
        self._squeezing = True
        self._squeeze_block = self._current_rate_bytes()
        self._squeeze_pos = 0

    def _current_rate_bytes(self) -> bytes:
        return words_to_bytes_le(self._state)[: self.rate_bytes]

    def squeeze(self, count: int) -> bytes:
        """Extract ``count`` output bytes (may be called repeatedly)."""
        if not self._squeezing:
            self._finalize()
        out = bytearray()
        while count > 0:
            if self._squeeze_pos == self.rate_bytes:
                self._permute()
                self._squeeze_block = self._current_rate_bytes()
                self._squeeze_pos = 0
            take = min(count, self.rate_bytes - self._squeeze_pos)
            out += self._squeeze_block[self._squeeze_pos : self._squeeze_pos + take]
            self._squeeze_pos += take
            count -= take
        return bytes(out)
