"""The PASTA round layers (paper Sec. II-B).

One permutation over the 2t-element state ``(X_L, X_R)`` is::

    for i in 0 .. rounds-1:
        X_L, X_R = affine_i(X_L), affine_i'(X_R)   # fresh matrices + RCs
        X_L, X_R = mix(X_L, X_R)
        state    = feistel_sbox(state)   if i < rounds-1
                   cube_sbox(state)      if i == rounds-1
    X_L, X_R = affine_rounds(X_L), affine_rounds'(X_R)   # final affine
    X_L, X_R = mix(X_L, X_R)
    return truncate(state) = X_L

so there are ``rounds + 1`` affine layers, each followed by Mix — matching
the paper's coefficient budget (2048 for PASTA-3, 640 for PASTA-4) and its
"last remaining Mix operation" cycle accounting.

Every layer here is *invertible* except the final truncation, which is what
prevents inverting the permutation back to the key.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ff.prime import PrimeField


def affine(field: PrimeField, matrix: np.ndarray, state: np.ndarray, rc: np.ndarray) -> np.ndarray:
    """A_i: ``M . x + rc`` on one t-element half-state."""
    return field.vec_add(field.mat_vec(matrix, state), rc)


def mix(field: PrimeField, xl: np.ndarray, xr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Mixing layer: ``(2 X_L + X_R, X_L + 2 X_R)``.

    Computed with three additions, exactly as the hardware does
    (Sec. III-D): s = X_L + X_R; left = X_L + s; right = X_R + s.
    """
    s = field.vec_add(xl, xr)
    return field.vec_add(xl, s), field.vec_add(xr, s)


def feistel_sbox(field: PrimeField, state: np.ndarray) -> np.ndarray:
    """S': ``y_0 = x_0``; ``y_j = x_j + x_{j-1}^2`` over the full 2t state."""
    squares = field.vec_mul(state[:-1], state[:-1])
    out = state.copy()
    out[1:] = field.vec_add(state[1:], squares)
    return out


def cube_sbox(field: PrimeField, state: np.ndarray) -> np.ndarray:
    """S: ``y_j = x_j^3`` (two multiplications per element)."""
    return field.vec_mul(field.vec_mul(state, state), state)


def feistel_sbox_inverse(field: PrimeField, state: np.ndarray) -> np.ndarray:
    """Inverse of S' (sequential: y_j - y'_{j-1}^2 front to back)."""
    out = state.copy()
    for j in range(1, state.shape[0]):
        out[j] = field.sub(int(state[j]), field.square(int(out[j - 1])))
    return out


def cube_sbox_inverse(field: PrimeField, state: np.ndarray) -> np.ndarray:
    """Inverse of S: cube root, i.e. power 3^{-1} mod (p-1).

    Requires gcd(3, p-1) = 1, which holds for all moduli in
    :mod:`repro.ff.params` (and is asserted here).
    """
    p = field.p
    from math import gcd

    if gcd(3, p - 1) != 1:
        raise ValueError(f"x^3 is not a bijection mod {p}")
    e = pow(3, -1, p - 1)
    return field.coerce(np.array([pow(int(x), e, p) for x in state], dtype=object))


def truncate(state_l: np.ndarray) -> np.ndarray:
    """Trunc: the keystream is the left half of the final state."""
    return state_l.copy()
