"""PASTA parameter sets (paper Sec. II-B and Table I).

Two published variants:

* **PASTA-3**: state 2t = 256 coefficients (t = 128), 3 rounds;
* **PASTA-4**: state 2t = 64 coefficients (t = 32), 4 rounds;

both evaluated over Mersenne-structured primes of 17/33/54 bits. A *toy*
variant (t = 4) is provided for the HHE end-to-end demonstration, where
every state element becomes a BFV ciphertext — it exercises the identical
circuit structure at a size pure-Python FHE can evaluate quickly. The toy
variant offers no security and is clearly marked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError
from repro.ff.params import P17, P33, P54
from repro.ff.prime import PrimeField
from repro.ff.sampling import RejectionSampler

#: Random vectors consumed per affine layer: two matrix first-rows + two
#: round-constant vectors (paper Fig. 3 / Sec. IV-B).
VECTORS_PER_LAYER = 4


@dataclass(frozen=True)
class PastaParams:
    """Immutable description of one PASTA instance."""

    name: str
    t: int  #: block size = keystream elements per block = half the state
    rounds: int
    p: int  #: plaintext prime modulus
    secure: bool = True  #: False for reduced test-only instances

    def __post_init__(self) -> None:
        if self.t < 2:
            raise ParameterError(f"t must be >= 2, got {self.t}")
        if self.rounds < 1:
            raise ParameterError(f"rounds must be >= 1, got {self.rounds}")
        object.__setattr__(self, "_field", PrimeField(self.p))
        object.__setattr__(self, "_sampler", RejectionSampler(self.p))

    # -- derived quantities --------------------------------------------------

    @property
    def field(self) -> PrimeField:
        return self._field  # type: ignore[attr-defined]

    @property
    def sampler(self) -> RejectionSampler:
        return self._sampler  # type: ignore[attr-defined]

    @property
    def state_size(self) -> int:
        """Total state coefficients 2t."""
        return 2 * self.t

    @property
    def key_size(self) -> int:
        """Secret key coefficients (the initial state)."""
        return 2 * self.t

    @property
    def affine_layers(self) -> int:
        """Affine layers per permutation = rounds + 1 (final layer included)."""
        return self.rounds + 1

    @property
    def coefficients_per_block(self) -> int:
        """Pseudo-random field elements the XOF must deliver per block.

        2048 for PASTA-3 and 640 for PASTA-4, as stated in Sec. III-A.
        """
        return self.affine_layers * VECTORS_PER_LAYER * self.t

    @property
    def modulus_bits(self) -> int:
        return self.p.bit_length()

    @property
    def keystream_bytes_per_block(self) -> int:
        """Serialized ciphertext bytes per full block (t packed elements)."""
        return (self.t * self.modulus_bits + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PastaParams({self.name}: t={self.t}, rounds={self.rounds}, "
            f"p={self.p} [{self.modulus_bits}-bit])"
        )


#: PASTA-3 over the 17-bit prime (the paper's default comparison point).
PASTA_3 = PastaParams(name="pasta3-17", t=128, rounds=3, p=P17)

#: PASTA-4 over the 17-bit prime.
PASTA_4 = PastaParams(name="pasta4-17", t=32, rounds=4, p=P17)

#: PASTA-4 at the wider datapaths of Table I.
PASTA_4_33 = PastaParams(name="pasta4-33", t=32, rounds=4, p=P33)
PASTA_4_54 = PastaParams(name="pasta4-54", t=32, rounds=4, p=P54)

#: Reduced instance for the HHE end-to-end demo and FHE tests. NOT SECURE.
PASTA_TOY = PastaParams(name="pasta-toy", t=4, rounds=3, p=P17, secure=False)

#: Minimal instance for fast unit tests of the homomorphic path. NOT SECURE.
PASTA_MICRO = PastaParams(name="pasta-micro", t=2, rounds=2, p=P17, secure=False)

ALL_PUBLISHED = (PASTA_3, PASTA_4, PASTA_4_33, PASTA_4_54)
