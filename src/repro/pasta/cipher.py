"""The PASTA stream cipher: reference (software) implementation.

This is the functional golden model. The hardware model
(:mod:`repro.hw.accelerator`) and the RISC-V peripheral reproduce its
keystream bit-exactly; the HHE server evaluates its decryption circuit
homomorphically.

Per-block pseudo-random material is squeezed from SHAKE128 in the fixed
order of the paper's Fig. 3 schedule — for each affine layer:
``alpha_L`` (matrix first row, zero excluded), ``alpha_R``, ``rc_L``,
``rc_R`` — so the hardware's rejection-sampling decisions land on the
same words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ff.sampling import SamplerStats
from repro.pasta import layers as L
from repro.pasta.matgen import generate_matrix
from repro.pasta.params import PastaParams
from repro.pasta.xof import block_xof


@dataclass(frozen=True)
class LayerMaterials:
    """Public per-layer material: two matrix seeds and two round constants."""

    alpha_l: np.ndarray
    alpha_r: np.ndarray
    rc_l: np.ndarray
    rc_r: np.ndarray


@dataclass(frozen=True)
class BlockMaterials:
    """All public pseudo-random material of one block's permutation."""

    params: PastaParams
    nonce: int
    counter: int
    layers: Tuple[LayerMaterials, ...]
    stats: SamplerStats  #: accept/reject counters over the whole block
    permutations: int  #: Keccak-f squeeze permutations consumed

    def matrix_l(self, layer: int) -> np.ndarray:
        """Materialized left-half matrix of ``layer`` (reference path)."""
        return generate_matrix(self.params.field, self.layers[layer].alpha_l)

    def matrix_r(self, layer: int) -> np.ndarray:
        """Materialized right-half matrix of ``layer``."""
        return generate_matrix(self.params.field, self.layers[layer].alpha_r)


def generate_block_materials(
    params: PastaParams,
    nonce: int,
    counter: int,
    words: Optional[Iterator[int]] = None,
) -> BlockMaterials:
    """Sample every matrix seed and round constant for one block.

    ``words`` may override the XOF word stream (the hardware model passes
    its own timed stream built over the identical XOF, so the sampled
    values — and the rejections — are the same).
    """
    shake = None
    if words is None:
        shake = block_xof(params, nonce, counter)
        words = shake.words()
    sampler = params.sampler
    accepted = 0
    rejected = 0
    layer_list: List[LayerMaterials] = []
    for _ in range(params.affine_layers):
        alpha_l, s1 = sampler.sample(words, params.t, min_value=1)
        alpha_r, s2 = sampler.sample(words, params.t, min_value=1)
        rc_l, s3 = sampler.sample(words, params.t)
        rc_r, s4 = sampler.sample(words, params.t)
        for s in (s1, s2, s3, s4):
            accepted += s.accepted
            rejected += s.rejected
        field = params.field
        layer_list.append(
            LayerMaterials(
                alpha_l=field.array(alpha_l),
                alpha_r=field.array(alpha_r),
                rc_l=field.array(rc_l),
                rc_r=field.array(rc_r),
            )
        )
    permutations = shake.permutation_count if shake is not None else -(-(accepted + rejected) // 21)
    return BlockMaterials(
        params=params,
        nonce=nonce,
        counter=counter,
        layers=tuple(layer_list),
        stats=SamplerStats(accepted=accepted, rejected=rejected),
        permutations=permutations,
    )


class Pasta:
    """PASTA-t encryption/decryption with a fixed secret key.

    Parameters
    ----------
    params:
        A :class:`~repro.pasta.params.PastaParams` instance.
    key:
        The 2t-element secret key (the permutation's input state).
    """

    def __init__(self, params: PastaParams, key: Sequence[int]):
        if len(key) != params.key_size:
            raise ParameterError(f"key must have {params.key_size} elements, got {len(key)}")
        self.params = params
        self.field = params.field
        self.key = self.field.array(key)
        #: nonce -> number of counters already consumed by :meth:`encrypt`.
        self._used_nonces: dict = {}

    # -- keystream -----------------------------------------------------------

    def keystream_block(
        self, nonce: int, counter: int, materials: Optional[BlockMaterials] = None
    ) -> np.ndarray:
        """The t-element keystream KS = Trunc(pi(K)) for one block."""
        if materials is None:
            materials = generate_block_materials(self.params, nonce, counter)
        return self.permute(self.key, materials)

    def keystream_blocks(self, nonce: int, counter0: int, n_blocks: int) -> np.ndarray:
        """Keystream for ``n_blocks`` consecutive counters as an ``(n, t)`` array.

        Runs on the batched engine (:mod:`repro.pasta.batch`): one
        vectorized Keccak/sampling/MatMul pass for the whole batch, backed
        by the shared per-``(nonce, counter)`` materials cache. Bit-exact
        with calling :meth:`keystream_block` per counter.
        """
        from repro.pasta.batch import get_engine

        return get_engine(self.params).keystream_blocks(self.key, nonce, counter0, n_blocks)

    def permute(self, state: np.ndarray, materials: BlockMaterials) -> np.ndarray:
        """Apply the PASTA permutation to ``state`` and truncate."""
        params = self.params
        field = self.field
        t = params.t
        xl = field.coerce(state[:t])
        xr = field.coerce(state[t:])
        for i in range(params.rounds):
            layer = materials.layers[i]
            xl = L.affine(field, materials.matrix_l(i), xl, layer.rc_l)
            xr = L.affine(field, materials.matrix_r(i), xr, layer.rc_r)
            xl, xr = L.mix(field, xl, xr)
            full = np.concatenate([xl, xr])
            if i < params.rounds - 1:
                full = L.feistel_sbox(field, full)
            else:
                full = L.cube_sbox(field, full)
            xl, xr = full[:t], full[t:]
        final = materials.layers[params.rounds]
        xl = L.affine(field, materials.matrix_l(params.rounds), xl, final.rc_l)
        xr = L.affine(field, materials.matrix_r(params.rounds), xr, final.rc_r)
        xl, xr = L.mix(field, xl, xr)
        return L.truncate(xl)

    # -- block operations -----------------------------------------------------

    def encrypt_block(self, message: Sequence[int], nonce: int, counter: int) -> np.ndarray:
        """Encrypt up to t field elements: ``c = m + KS``."""
        m = self.field.array(message)
        if m.shape[0] > self.params.t:
            raise ParameterError(f"block holds at most t={self.params.t} elements")
        ks = self.keystream_block(nonce, counter)
        return self.field.vec_add(m, ks[: m.shape[0]])

    def decrypt_block(self, ciphertext: Sequence[int], nonce: int, counter: int) -> np.ndarray:
        """Decrypt up to t field elements: ``m = c - KS``."""
        c = self.field.array(ciphertext)
        if c.shape[0] > self.params.t:
            raise ParameterError(f"block holds at most t={self.params.t} elements")
        ks = self.keystream_block(nonce, counter)
        return self.field.vec_sub(c, ks[: c.shape[0]])

    # -- streaming ------------------------------------------------------------

    def encrypt(
        self, message: Sequence[int], nonce: int, *, allow_nonce_reuse: bool = False
    ) -> np.ndarray:
        """Encrypt an arbitrary-length element sequence (counter = block index).

        Reusing a ``(nonce, counter)`` pair repeats the keystream — the
        classic stream-cipher footgun that hands an attacker the XOR (here:
        difference) of two plaintexts. Each instance therefore tracks the
        counter window consumed per nonce and raises
        :class:`~repro.errors.ParameterError` on overlap. Pass
        ``allow_nonce_reuse=True`` only when re-encrypting the *same*
        message deterministically (e.g. benchmarks, idempotent retries).
        """
        self._guard_nonce(nonce, self._block_count(len(message)), allow_nonce_reuse)
        return self._stream(message, nonce, encrypt=True)

    def decrypt(self, ciphertext: Sequence[int], nonce: int) -> np.ndarray:
        """Inverse of :meth:`encrypt` under the same nonce."""
        return self._stream(ciphertext, nonce, encrypt=False)

    def _block_count(self, n_elements: int) -> int:
        return max(1, -(-n_elements // self.params.t))

    def _guard_nonce(self, nonce: int, n_blocks: int, allow_nonce_reuse: bool) -> None:
        used = self._used_nonces.get(nonce, 0)
        if used > 0 and not allow_nonce_reuse:
            raise ParameterError(
                f"nonce {nonce} already consumed counters [0, {used}); keystream reuse "
                "leaks plaintext differences — use a fresh nonce, or pass "
                "allow_nonce_reuse=True if re-encrypting the same message"
            )
        self._used_nonces[nonce] = max(used, n_blocks)

    def _stream(self, data: Sequence[int], nonce: int, encrypt: bool) -> np.ndarray:
        arr = self.field.array(data)
        t = self.params.t
        n_blocks = -(-arr.shape[0] // t)
        out = self.field.zeros(arr.shape[0])
        op = self.field.vec_add if encrypt else self.field.vec_sub
        ks = self.keystream_blocks(nonce, 0, n_blocks)
        for counter, start in enumerate(range(0, arr.shape[0], t)):
            chunk = arr[start : start + t]
            out[start : start + chunk.shape[0]] = op(chunk, ks[counter, : chunk.shape[0]])
        return out


def random_key(params: PastaParams, seed: bytes = b"pasta-key") -> np.ndarray:
    """Deterministic pseudo-random key (for tests/examples), via SHAKE256."""
    from repro.keccak.shake import shake256

    words = shake256(b"key-derivation|" + seed).words()
    key, _ = params.sampler.sample(words, params.key_size)
    return params.field.array(key)
