"""Batched keystream engine: many PASTA blocks per numpy pass.

The scalar path (:mod:`repro.pasta.cipher`) derives one block at a time:
one Python Keccak permutation per 21 XOF words, one Python loop iteration
per rejection-sampled coefficient, one mat-vec per affine layer. That is
the repository's dominant cost center — every eval table, the HHE server,
and the video benchmark sit behind it. This engine converts the whole
pipeline to data-parallel execution, mirroring how the paper's hardware
overlaps XOF squeezing, rejection sampling, and MatMul across blocks:

* **XOF**: N sponge states advance in lockstep through the vectorized
  Keccak-f[1600] (:mod:`repro.keccak.vectorized`) — one ``(N, 25)``
  permutation replaces N scalar ones.
* **Sampling**: whole ``(N, W)`` word matrices are masked and filtered at
  once (paper Sec. IV-B), and the variable-length take of accepted words
  runs across *all* lanes in one cumulative-count pass — no Python loop
  over lanes anywhere on the sampling path.
* **MatGen / MatMul**: the sequential-matrix recurrence and the affine
  layers run across the batch axis (``einsum`` with overflow-safe
  accumulation from :meth:`repro.ff.prime.PrimeField.batched_mat_vec`).
* **Caching**: a per-``(nonce, counter)`` LRU keeps both the sampled
  materials and the materialized matrices, so repeated transciphering of
  the same stream — the HHE server re-deriving what the client already
  derived — never regenerates them.

Everything is bit-exact with the scalar golden model: same word stream per
lane, same accept/reject decisions, same field arithmetic. The test suite
asserts equality block-for-block and the benchmark records the speedup
(target >= 5x at batch 64 for PASTA-3).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ff.sampling import SamplerStats
from repro.utils.budget import CacheBudget
from repro.keccak.vectorized import batched_shake128
from repro.pasta.cipher import BlockMaterials, LayerMaterials
from repro.pasta.matgen import generate_matrix
from repro.pasta.params import PastaParams
from repro.pasta.xof import encode_block_seed

__all__ = [
    "KeystreamEngine",
    "generate_block_materials_batch",
    "generate_block_materials_pairs",
    "batched_sequential_matrices",
    "get_engine",
    "DEFAULT_CACHE_BLOCKS",
]

#: Default LRU capacity in cached blocks. A PASTA-3 block's materialized
#: matrices are ~1 MB (8 x 128 x 128 int64), so 64 blocks bound the cache
#: at a comfortable ~64 MB worst case.
DEFAULT_CACHE_BLOCKS = 64


class _BatchWordStream:
    """Lockstep XOF word buffers with per-lane consumption pointers.

    Lane ``n`` sees exactly the word stream ``shake128(seed_n).words()``
    would produce; the batch only changes *when* permutations happen, never
    what each lane reads.
    """

    def __init__(self, seeds: Sequence[bytes]):
        self._shake = batched_shake128(seeds)
        self.n = len(seeds)
        self.rate_words = self._shake.rate_words
        self._buf = np.empty((self.n, 0), dtype=np.uint64)
        self.pos = np.zeros(self.n, dtype=np.intp)

    @property
    def capacity(self) -> int:
        return self._buf.shape[1]

    def grow(self, blocks: int = 1) -> None:
        """Squeeze ``blocks`` more 21-word batches onto every lane."""
        new = [self._shake.squeeze_words_block() for _ in range(blocks)]
        self._buf = np.concatenate([self._buf, *new], axis=1)

    def words(self) -> np.ndarray:
        """The full ``(N, W)`` buffer (consumed words included)."""
        return self._buf


def _sample_draw(
    stream: _BatchWordStream, sampler, count: int, min_value: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` accepted candidates on *every* lane at once.

    Returns ``(values, rejected)`` with shapes ``(N, count)`` and ``(N,)``.
    The decisions are identical to running ``RejectionSampler.sample`` on
    each lane's scalar word stream: a lane's draw starts at its private
    consumption pointer and takes its first ``count`` accepted words. The
    take itself is one cumulative-count pass over the whole ``(N, W)``
    buffer — no per-lane Python loop.
    """
    while True:
        values, ok = sampler.candidates_batch(stream.words(), min_value)
        # Mask out words each lane already consumed, then rank the rest.
        avail = ok & (np.arange(stream.capacity)[None, :] >= stream.pos[:, None])
        cum = np.cumsum(avail, axis=1)
        if stream.capacity and int(cum[:, -1].min()) >= count:
            break
        # Some lane is short on accepted words — squeeze another batch for
        # every lane (lanes are in lockstep; extra words stay buffered).
        stream.grow()
    take = avail & (cum <= count)
    lane_idx, word_idx = np.nonzero(take)  # row-major: lane-grouped, ascending
    out = values[lane_idx, word_idx].reshape(stream.n, count)
    ends = word_idx.reshape(stream.n, count)[:, -1] + 1
    rejected = ends - stream.pos - count
    stream.pos = ends.astype(np.intp)
    return out, rejected


def _derive_layer_arrays(
    params: PastaParams, pairs: Sequence[Tuple[int, int]]
) -> Tuple[List[List[np.ndarray]], np.ndarray, _BatchWordStream]:
    """All sampled per-layer vectors for every pair, fully stacked.

    Returns ``(layer_values, rejected, stream)`` where
    ``layer_values[i][v]`` is the ``(N, t)`` uint64 matrix of the layer's
    v-th vector (alpha_L, alpha_R, rc_L, rc_R), ``rejected`` the per-lane
    rejection counts, and ``stream`` the word stream (its ``pos`` gives
    per-lane words consumed). No per-lane Python work happens here.
    """
    sampler = params.sampler
    t = params.t
    stream = _BatchWordStream([encode_block_seed(params, no, co) for no, co in pairs])
    # Pre-squeeze roughly the expected demand in one go; the sampler grows
    # the buffer on demand for unlucky lanes.
    expected_words = params.coefficients_per_block * sampler.expected_words_per_element
    stream.grow(max(1, int(np.ceil(expected_words * 1.05 / stream.rate_words))))

    rejected = np.zeros(len(pairs), dtype=np.int64)
    layer_values: List[List[np.ndarray]] = []
    for _ in range(params.affine_layers):
        vectors: List[np.ndarray] = []
        for min_value in (1, 1, 0, 0):  # alpha_L, alpha_R, rc_L, rc_R
            values, nrej = _sample_draw(stream, sampler, t, min_value)
            rejected += nrej
            vectors.append(values)
        layer_values.append(vectors)
    return layer_values, rejected, stream


def generate_block_materials_pairs(
    params: PastaParams, pairs: Sequence[Tuple[int, int]]
) -> List[BlockMaterials]:
    """Batched materials derivation over arbitrary ``(nonce, counter)`` pairs.

    The generalization of :func:`generate_block_materials_batch` that the
    streaming service leans on: lanes need not share a nonce, so one
    vectorized Keccak/sampling pass can cover many in-flight *frames*, not
    just consecutive counters of one frame. Bit-exact with the scalar
    derivation (values, sampler statistics, and permutation counts
    included).
    """
    pairs = [(int(n), int(c)) for n, c in pairs]
    if not pairs:
        return []
    field = params.field
    layer_values, rejected, stream = _derive_layer_arrays(params, pairs)

    use_int64 = field.dtype is np.int64
    out: List[BlockMaterials] = []
    for lane, (nonce, counter) in enumerate(pairs):
        layers = []
        for vectors in layer_values:
            arrays = []
            for values in vectors:
                if use_int64:
                    arrays.append(values[lane].astype(np.int64))
                else:
                    arrays.append(field.array(int(v) for v in values[lane]))
            layers.append(
                LayerMaterials(alpha_l=arrays[0], alpha_r=arrays[1], rc_l=arrays[2], rc_r=arrays[3])
            )
        words_consumed = int(stream.pos[lane])
        out.append(
            BlockMaterials(
                params=params,
                nonce=nonce,
                counter=counter,
                layers=tuple(layers),
                stats=SamplerStats(
                    accepted=params.coefficients_per_block, rejected=int(rejected[lane])
                ),
                # Scalar sponges squeeze lazily: consuming w words costs
                # ceil(w / 21) permutations (absorb included).
                permutations=-(-words_consumed // stream.rate_words),
            )
        )
    return out


def generate_block_materials_batch(
    params: PastaParams, nonce: int, counters: Sequence[int]
) -> List[BlockMaterials]:
    """Batched :func:`repro.pasta.cipher.generate_block_materials`.

    Returns one :class:`BlockMaterials` per counter, bit-exact with the
    scalar derivation (values, sampler statistics, and permutation counts
    included).
    """
    return generate_block_materials_pairs(params, [(nonce, int(c)) for c in counters])


def batched_sequential_matrices(params: PastaParams, alphas: np.ndarray) -> np.ndarray:
    """Materialize N sequential matrices at once: ``(N, t) -> (N, t, t)``.

    Row recurrence of paper Eq. (1) (see :mod:`repro.pasta.matgen`),
    broadcast across the batch axis. Works for both the int64 and the
    big-int object dtype; the int64 update ``shifted + feedback * alpha``
    is bounded by ``(p-1)^2 + (p-1)``, within the field's accumulation
    headroom.
    """
    field = params.field
    p = field.p
    n, t = alphas.shape
    out = np.empty((n, t, t), dtype=field.dtype)
    row = alphas.copy()
    out[:, 0, :] = row
    shifted = np.empty_like(row)
    for j in range(1, t):
        feedback = row[:, -1]
        shifted[:, 1:] = row[:, :-1]
        shifted[:, 0] = 0
        row = (shifted + feedback[:, None] * alphas) % p
        out[:, j, :] = row
    return out


@dataclass
class _CacheEntry:
    """One cached block: sampled materials + lazily materialized matrices."""

    materials: BlockMaterials
    matrices: Dict[Tuple[int, str], np.ndarray] = dataclass_field(default_factory=dict)


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters and current occupancy of an engine's LRU."""

    hits: int
    misses: int
    size: int
    maxsize: int


class KeystreamEngine:
    """Batched keystream generation for one parameter set, with an LRU.

    The engine is shared per :class:`PastaParams` (see :func:`get_engine`)
    so every consumer — the cipher's streaming API, the batched HHE
    server, the video pipeline — hits one materials cache. Keys are
    ``(nonce, counter)``; values carry the block's sampled materials and
    any matrices already materialized for it.
    """

    def __init__(
        self,
        params: PastaParams,
        cache_size: int = DEFAULT_CACHE_BLOCKS,
        budget: Optional[CacheBudget] = None,
        owner: str = "default",
    ):
        if cache_size < 0:
            raise ParameterError(f"cache_size must be >= 0, got {cache_size}")
        self.params = params
        self.cache_size = cache_size
        #: Optional shared cross-engine bound (cost unit: one cached block).
        #: The multi-tenant service hands every tenant's engine the same
        #: :class:`CacheBudget`, so aggregate materials memory stays bounded
        #: however many tenant engines exist; ``cache_size`` remains the
        #: per-engine bound on top.
        self.budget = budget
        self.owner = owner
        self._cache: "OrderedDict[Tuple[int, int], _CacheEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        if budget is not None:
            budget.register(owner, self._evict_one_block)
        # Engines are shared per parameter set (get_engine) and the
        # streaming service hits them from worker threads: every access to
        # the OrderedDict or the hit/miss counters goes through this lock.
        # ``OrderedDict.move_to_end`` + ``popitem`` are NOT atomic under
        # concurrent mutation — unguarded interleavings corrupt the LRU
        # order or raise KeyError mid-eviction. Derivation itself runs
        # outside the lock (it is deterministic, so a duplicated miss is
        # idempotent) to keep batched misses parallelizable.
        self._lock = threading.Lock()

    # -- cache plumbing ------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits, misses=self._misses, size=len(self._cache), maxsize=self.cache_size
            )

    def clear_cache(self) -> None:
        with self._lock:
            freed = len(self._cache)
            self._cache.clear()
            self._hits = 0
            self._misses = 0
        if self.budget is not None and freed:
            self.budget.release(self.owner, float(freed))

    def _evict_one_block(self) -> float:
        """Shared-budget callback: drop the least-recently-used block."""
        with self._lock:
            if not self._cache:
                return 0.0
            self._cache.popitem(last=False)
            return 1.0

    def _insert(self, nonce: int, counter: int, entry: _CacheEntry) -> None:
        """Install one derived entry (takes the lock; don't call holding it).

        Budget accounting settles *after* the store lock is released — the
        budget's evictors take engine locks, so the one-way ordering
        (budget -> engine) must never be inverted here.
        """
        if self.cache_size == 0:
            return
        key = (nonce, counter)
        evicted = 0
        with self._lock:
            fresh = key not in self._cache
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                evicted += 1
        if self.budget is not None:
            if evicted:
                self.budget.release(self.owner, float(evicted))
            if fresh:
                self.budget.charge(self.owner, 1.0)

    def _entries_pairs(self, pairs: Sequence[Tuple[int, int]]) -> List[_CacheEntry]:
        """Cached entries for every (nonce, counter) pair, batch-deriving misses."""
        pairs = [(int(n), int(c)) for n, c in pairs]
        entries: Dict[Tuple[int, int], _CacheEntry] = {}
        missing: List[Tuple[int, int]] = []
        with self._lock:
            for key in pairs:
                cached = self._cache.get(key)
                if cached is not None:
                    self._hits += 1
                    self._cache.move_to_end(key)
                    entries[key] = cached
                elif key not in entries:
                    self._misses += 1
                    missing.append(key)
                    entries[key] = None  # type: ignore[assignment]
        if missing:
            for materials in generate_block_materials_pairs(self.params, missing):
                entry = _CacheEntry(materials=materials)
                entries[(materials.nonce, materials.counter)] = entry
                self._insert(materials.nonce, materials.counter, entry)
        return [entries[key] for key in pairs]

    def _entries(self, nonce: int, counters: Sequence[int]) -> List[_CacheEntry]:
        """Cached entries for every counter, batch-deriving the misses."""
        return self._entries_pairs([(nonce, c) for c in counters])

    # -- public API ----------------------------------------------------------

    def materials(self, nonce: int, counters: Sequence[int]) -> List[BlockMaterials]:
        """Block materials for every counter (cache-backed, batch-derived)."""
        return [e.materials for e in self._entries(nonce, counters)]

    def materials_pairs(self, pairs: Sequence[Tuple[int, int]]) -> List[BlockMaterials]:
        """Block materials for arbitrary (nonce, counter) pairs (cache-backed)."""
        return [e.materials for e in self._entries_pairs(pairs)]

    def matrix(self, nonce: int, counter: int, layer: int, side: str) -> np.ndarray:
        """One materialized affine matrix, cached alongside its materials."""
        (entry,) = self._entries(nonce, [counter])
        key = (layer, side)
        if key not in entry.matrices:
            alpha = getattr(entry.materials.layers[layer], f"alpha_{side}")
            entry.matrices[key] = generate_matrix(self.params.field, alpha)
        return entry.matrices[key]

    def matrix_l(self, nonce: int, counter: int, layer: int) -> np.ndarray:
        return self.matrix(nonce, counter, layer, "l")

    def matrix_r(self, nonce: int, counter: int, layer: int) -> np.ndarray:
        return self.matrix(nonce, counter, layer, "r")

    def _stacked_matrices(
        self, entries: List[_CacheEntry], layer: int, side: str
    ) -> np.ndarray:
        """(N, t, t) matrices for one layer/side, filling cache gaps batched."""
        key = (layer, side)
        todo = [i for i, e in enumerate(entries) if key not in e.matrices]
        if todo:
            alphas = np.stack(
                [getattr(entries[i].materials.layers[layer], f"alpha_{side}") for i in todo]
            )
            mats = batched_sequential_matrices(self.params, alphas)
            for slot, i in enumerate(todo):
                entries[i].matrices[key] = mats[slot]
            if len(todo) == len(entries):
                # All fresh, already in batch order — skip the re-stack copy.
                return mats
        return np.stack([e.matrices[key] for e in entries])

    def keystream_blocks(
        self, key: np.ndarray, nonce: int, counter0: int, n_blocks: int
    ) -> np.ndarray:
        """Keystream for ``n_blocks`` consecutive counters as ``(n, t)``.

        Row ``i`` equals the scalar ``Pasta.keystream_block(nonce,
        counter0 + i)`` exactly; the whole batch shares each permutation,
        sampling pass, and affine ``einsum``.
        """
        return self.keystream_pairs(
            key, [(nonce, c) for c in range(counter0, counter0 + n_blocks)]
        )

    def keystream_pairs(
        self, key: np.ndarray, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        """Keystream rows for arbitrary ``(nonce, counter)`` pairs, ``(n, t)``.

        The cross-frame workhorse of the streaming service: one vectorized
        pass covers blocks of *different* nonces (frames), so steady-state
        throughput amortizes the per-pass Keccak/sampling overhead over
        every frame currently in flight, not just one frame's blocks.
        """
        from repro.obs import get_registry, get_tracer
        from repro.obs.cycles import modeled_cycle_attributes

        params = self.params
        obs = get_registry()
        obs.histogram(
            "pasta.keystream.lanes", variant=params.name, omega=params.modulus_bits
        ).observe(len(pairs))
        with get_tracer().span(
            "pasta.keystream",
            metric="pasta.keystream.seconds",
            variant=params.name,
            omega=params.modulus_bits,
            lanes=len(pairs),
            **modeled_cycle_attributes(params, len(pairs)),
        ):
            return self._keystream_pairs(key, pairs)

    def _keystream_pairs(
        self, key: np.ndarray, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        params = self.params
        field = params.field
        n_blocks = len(pairs)
        if n_blocks <= 0:
            return field.zeros(0, params.t)
        if self.cache_size == 0 and field.dtype is np.int64:
            # Streaming fast path: a cache-less engine serves fresh
            # (nonce, counter) pairs that will never be asked for again, so
            # skip per-block BlockMaterials assembly entirely and stay in
            # stacked array-land from XOF words to keystream rows.
            with self._lock:
                self._misses += n_blocks
            layer_values, _, _ = _derive_layer_arrays(
                params, [(int(no), int(co)) for no, co in pairs]
            )
            alphas = {}
            rcs = {}
            for layer, (al, ar, rl, rr) in enumerate(layer_values):
                alphas[(layer, "l")] = al.astype(np.int64)
                alphas[(layer, "r")] = ar.astype(np.int64)
                rcs[(layer, "l")] = rl.astype(np.int64)
                rcs[(layer, "r")] = rr.astype(np.int64)
            return self._keystream_rounds(
                key,
                n_blocks,
                lambda layer, side: batched_sequential_matrices(params, alphas[(layer, side)]),
                lambda layer, side: rcs[(layer, side)],
            )
        entries = self._entries_pairs(pairs)
        return self._keystream_rounds(
            key,
            n_blocks,
            lambda layer, side: self._stacked_matrices(entries, layer, side),
            lambda layer, side: np.stack(
                [getattr(e.materials.layers[layer], f"rc_{side}") for e in entries]
            ),
        )

    def _keystream_rounds(self, key, n_blocks: int, mats_of, rc_of) -> np.ndarray:
        """The PASTA round schedule over stacked per-block state rows.

        ``mats_of(layer, side)`` / ``rc_of(layer, side)`` supply the
        ``(N, t, t)`` matrices and ``(N, t)`` round constants; both the
        cache-backed and the fused streaming path feed this one loop.
        """
        params = self.params
        field = params.field
        p = field.p
        t = params.t

        state = np.tile(np.asarray(key).reshape(1, -1), (n_blocks, 1))
        xl = state[:, :t] % p
        xr = state[:, t:] % p

        def affine(x: np.ndarray, layer: int, side: str) -> np.ndarray:
            return (field.batched_mat_vec(mats_of(layer, side), x) + rc_of(layer, side)) % p

        for i in range(params.rounds):
            xl = affine(xl, i, "l")
            xr = affine(xr, i, "r")
            s = (xl + xr) % p
            xl = (xl + s) % p
            xr = (xr + s) % p
            full = np.concatenate([xl, xr], axis=1)
            if i < params.rounds - 1:
                squares = (full[:, :-1] * full[:, :-1]) % p
                full[:, 1:] = (full[:, 1:] + squares) % p
            else:
                full = ((full * full % p) * full) % p
            xl, xr = full[:, :t], full[:, t:]
        last = params.rounds
        xl = affine(xl, last, "l")
        xr = affine(xr, last, "r")
        s = (xl + xr) % p
        xl = (xl + s) % p
        return xl


_ENGINES: Dict[Tuple[PastaParams, Optional[str]], KeystreamEngine] = {}
_ENGINES_LOCK = threading.Lock()


def get_engine(
    params: PastaParams,
    cache_size: Optional[int] = None,
    tenant: Optional[str] = None,
    budget: Optional[CacheBudget] = None,
) -> KeystreamEngine:
    """The shared per-(parameter-set, tenant) engine (created on first use).

    ``cache_size``/``budget`` only apply when the engine is first created;
    pass them to :class:`KeystreamEngine` directly for a private instance.
    ``tenant=None`` (the default) is the anonymous single-tenant engine the
    non-service callers share. Distinct tenants get distinct engines —
    cache entries and keystream state never cross a tenant boundary — and
    the multi-tenant service passes one :class:`CacheBudget` so their
    aggregate materials stay globally bounded. Safe to call from concurrent
    threads: a check-then-create race would otherwise hand two callers
    *different* engines, splitting the shared cache.
    """
    with _ENGINES_LOCK:
        key = (params, tenant)
        engine = _ENGINES.get(key)
        if engine is None:
            engine = KeystreamEngine(
                params,
                DEFAULT_CACHE_BLOCKS if cache_size is None else cache_size,
                budget=budget,
                owner=tenant if tenant is not None else "default",
            )
            _ENGINES[key] = engine
        return engine
