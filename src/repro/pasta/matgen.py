"""Invertible sequential matrix generation (paper Sec. II-C, Eq. (1)).

The affine layer's t x t matrix is never sampled wholesale: only its first
row ``alpha`` comes from the XOF. Subsequent rows follow the PHOTON/LED
"sequential" recurrence — row_{j+1} = row_j . C, where ``C`` is the
companion-style matrix with ones on the superdiagonal and ``alpha`` as its
last row. Expanding the product, the hardware-friendly row update is::

    row_{j+1}[0] = row_j[t-1] * alpha[0]
    row_{j+1}[k] = row_j[k-1] + row_j[t-1] * alpha[k]      (k >= 1)

i.e. one multiply-accumulate per output element — exactly the MAC array of
the paper's MatGen unit (Fig. 5). The first-row elements are sampled with
zero excluded, which keeps the construction invertible in practice (an
exhaustive empirical check lives in the test suite; a genuinely singular
draw would be rejected by :func:`generate_matrix` at circuit-build time).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ff.prime import PrimeField


def next_row(field: PrimeField, row: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """One step of the sequential recurrence: ``row . C(alpha)``."""
    shifted = np.roll(row, 1)
    shifted[0] = 0
    feedback = int(row[-1])
    return field.vec_add(shifted, field.scalar_mul(feedback, alpha))


def iter_rows(field: PrimeField, alpha: np.ndarray) -> Iterator[np.ndarray]:
    """Yield the t rows of the sequential matrix, starting from ``alpha``.

    Only two rows live at a time (``alpha`` plus the current row) — the
    memory optimization the paper credits for eliminating matrix storage.
    """
    alpha = field.coerce(np.asarray(alpha))
    row = alpha
    for _ in range(alpha.shape[0]):
        yield row
        row = next_row(field, row, alpha)


def generate_matrix(field: PrimeField, alpha: np.ndarray) -> np.ndarray:
    """Materialize the full t x t sequential matrix (reference path only)."""
    rows = list(iter_rows(field, alpha))
    return np.stack(rows) if field.dtype is np.int64 else np.array(rows, dtype=object)


def streaming_mat_vec(field: PrimeField, alpha: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute ``M(alpha) . x`` row-by-row without storing the matrix.

    This mirrors the hardware dataflow: each generated row is immediately
    consumed by a dot product against the state vector.
    """
    x = field.coerce(np.asarray(x))
    out = field.zeros(x.shape[0])
    for j, row in enumerate(iter_rows(field, alpha)):
        out[j] = field.dot(row, x)
    return out
