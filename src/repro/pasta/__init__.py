"""PASTA-3/-4 stream cipher: reference implementation + decryption circuit."""

from repro.pasta.batch import (
    KeystreamEngine,
    batched_sequential_matrices,
    generate_block_materials_batch,
    generate_block_materials_pairs,
    get_engine,
)
from repro.pasta.cipher import (
    BlockMaterials,
    LayerMaterials,
    Pasta,
    generate_block_materials,
    random_key,
)
from repro.pasta.encoding import (
    deserialize_ciphertext,
    pack_elements,
    serialize_ciphertext,
    serialized_block_bytes,
    unpack_elements,
)
from repro.pasta.decrypt_circuit import (
    ArithmeticBackend,
    CircuitCost,
    KeystreamCircuit,
    PlainBackend,
    bsgs_split,
    homomorphic_op_counts,
)
from repro.pasta.matgen import generate_matrix, iter_rows, next_row, streaming_mat_vec
from repro.pasta.params import (
    ALL_PUBLISHED,
    PASTA_3,
    PASTA_4,
    PASTA_4_33,
    PASTA_4_54,
    PASTA_MICRO,
    PASTA_TOY,
    VECTORS_PER_LAYER,
    PastaParams,
)
from repro.pasta.xof import block_xof, encode_block_seed

__all__ = [
    "ALL_PUBLISHED",
    "PASTA_3",
    "PASTA_4",
    "PASTA_4_33",
    "PASTA_4_54",
    "PASTA_MICRO",
    "PASTA_TOY",
    "VECTORS_PER_LAYER",
    "ArithmeticBackend",
    "BlockMaterials",
    "CircuitCost",
    "KeystreamCircuit",
    "KeystreamEngine",
    "LayerMaterials",
    "Pasta",
    "PastaParams",
    "PlainBackend",
    "batched_sequential_matrices",
    "block_xof",
    "deserialize_ciphertext",
    "encode_block_seed",
    "generate_block_materials",
    "generate_block_materials_batch",
    "generate_block_materials_pairs",
    "get_engine",
    "pack_elements",
    "serialize_ciphertext",
    "serialized_block_bytes",
    "unpack_elements",
    "generate_matrix",
    "bsgs_split",
    "homomorphic_op_counts",
    "iter_rows",
    "next_row",
    "random_key",
    "streaming_mat_vec",
]
