"""PASTA decryption as an explicit arithmetic circuit (for the HHE server).

The server holds the FHE-encrypted key and the *public* per-block material
(nonce, counter -> matrices and round constants). "Homomorphic HHE
decryption" (paper Fig. 1) evaluates the PASTA permutation over encrypted
state elements and subtracts the result from the symmetric ciphertext.

The circuit is expressed against an abstract :class:`ArithmeticBackend`, so
the same code path drives

* :class:`PlainBackend` — plain integers (used to cross-check the circuit
  against the reference cipher), and
* ``repro.hhe.BfvBackend`` — BFV ciphertexts (the actual HHE server).

Cost model: one affine layer costs t^2 plaintext multiplications; the
Feistel S-box costs one ciphertext-ciphertext square per element; the cube
S-box costs two. Multiplicative depth is ``rounds + 1`` (each Feistel round
adds one level, the cube adds two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Sequence, TypeVar

from repro.errors import ParameterError
from repro.ff.prime import PrimeField
from repro.pasta.cipher import BlockMaterials, generate_block_materials
from repro.pasta.params import PastaParams

T = TypeVar("T")


class ArithmeticBackend(Generic[T]):
    """Operations the circuit needs; plug in plain or homomorphic values."""

    def add(self, a: T, b: T) -> T:
        raise NotImplementedError

    def add_plain(self, a: T, constant: int) -> T:
        raise NotImplementedError

    def mul_plain(self, a: T, constant: int) -> T:
        raise NotImplementedError

    def square(self, a: T) -> T:
        raise NotImplementedError

    def mul(self, a: T, b: T) -> T:
        raise NotImplementedError

    def neg(self, a: T) -> T:
        raise NotImplementedError


class PlainBackend(ArithmeticBackend[int]):
    """Reference backend over plain field elements."""

    def __init__(self, field: PrimeField):
        self.field = field

    def add(self, a: int, b: int) -> int:
        return self.field.add(a, b)

    def add_plain(self, a: int, constant: int) -> int:
        return self.field.add(a, constant)

    def mul_plain(self, a: int, constant: int) -> int:
        return self.field.mul(a, constant)

    def square(self, a: int) -> int:
        return self.field.square(a)

    def mul(self, a: int, b: int) -> int:
        return self.field.mul(a, b)

    def neg(self, a: int) -> int:
        return self.field.neg(a)


@dataclass
class CircuitCost:
    """Operation counters accumulated while evaluating the circuit."""

    plain_muls: int = 0
    plain_adds: int = 0
    ct_adds: int = 0
    ct_squares: int = 0
    ct_muls: int = 0


def bsgs_split(t: int) -> tuple:
    """Baby-step/giant-step factorization ``(bs, giants)`` of a t-diagonal sum.

    For the power-of-two t of every PASTA variant the split is exact
    (``bs * giants == t``, no zero diagonals): ``bs = 2^ceil(log2(t)/2)``,
    the balanced square-ish factor. Non-power-of-two t fall back to
    ``bs = ceil(sqrt(t))`` with a padded last giant step.
    """
    if t < 1:
        raise ParameterError(f"BSGS needs a positive dimension, got {t}")
    if t & (t - 1) == 0:
        k = t.bit_length() - 1
        bs = 1 << ((k + 1) // 2)
        return bs, t // bs
    bs = int(t**0.5)
    while bs * bs < t:
        bs += 1
    return bs, -(-t // bs)


def homomorphic_op_counts(params: PastaParams, engine: str = "slots") -> dict:
    """Closed-form BFV op counts of one homomorphic PASTA evaluation.

    One batched evaluation of ``m = c - Trunc(pi(K))`` over encrypted state
    (:class:`repro.hhe.batched.BatchedHheServer`), any batch size, for
    either state layout:

    ``engine="slots"`` — t ciphertexts per state (the scalar/tensor
    evaluators), with ``r = rounds`` and 2(r+1) affine layer *sides* (l and
    r for rounds 0..r):

    * affine side: t^2 plain muls, t(t-1) adds, t plain rc adds
    * mix (r+1 of them): 3t adds
    * Feistel (r-1 of them, over the 2t concatenated state): 2t-1 each of
      squares/relins/adds
    * cube (1, over 2t state): 2t squares, 2t muls, 2 relins per element
    * final ``c - KS``: t plain adds

    ``engine="bsgs"`` — ONE packed ciphertext per state side (left/right),
    t-element state across slot groups, affine layers by the
    baby-step/giant-step diagonal method with ``(bs, G) = bsgs_split(t)``:

    * affine side: bs*G (= t) diagonal plain muls, bs*G - 1 adds,
      (bs-1) + (G-1) rotations (baby chain + Horner giant steps), 1 packed
      rc plain add
    * mix (r+1): 3 packed adds
    * Feistel (r-1): 2 squares/relins, 1 rotation, 3 mask plain muls, 3 adds
    * cube: 2 squares, 2 muls, 4 relins
    * final ``c - KS``: 1 packed plain add

    ``engine="bsgs_hoisted"`` — same circuit with Halevi-Shoup hoisting in
    the affine baby steps: every count matches ``"bsgs"`` (the bs-1 baby
    rotations still key-switch, just through a shared digit stack) plus one
    ``decompositions`` per affine side when bs > 1.

    The O(t^2) -> O(t) plain-mul and O(sqrt t) rotation scaling per layer
    side is the point of ROADMAP item 3. The benchmark and the parity tests
    assert real runs hit these exactly.
    """
    t, r = params.t, params.rounds
    sides = 2 * (r + 1)
    if engine == "slots":
        feistel = (r - 1) * (2 * t - 1)
        return {
            "plain_muls": sides * t * t,
            "plain_adds": sides * t + t,
            "adds": sides * t * (t - 1) + 3 * t * (r + 1) + feistel,
            "squares": feistel + 2 * t,
            "muls": 2 * t,
            "relins": feistel + 2 * t + 2 * t,
            "rotations": 0,
        }
    if engine not in ("bsgs", "bsgs_hoisted"):
        raise ParameterError(
            f"unknown op-count engine {engine!r} ('slots', 'bsgs' or 'bsgs_hoisted')"
        )
    bs, giants = bsgs_split(t)
    counts = {
        "plain_muls": sides * bs * giants + 3 * (r - 1),
        "plain_adds": sides + 1,
        "adds": sides * (bs * giants - 1) + 3 * (r + 1) + 3 * (r - 1),
        "squares": 2 * (r - 1) + 2,
        "muls": 2,
        "relins": 2 * (r - 1) + 4,
        "rotations": sides * ((bs - 1) + (giants - 1)) + 2 * (r - 1),
    }
    if engine == "bsgs_hoisted":
        counts["decompositions"] = sides if bs > 1 else 0
    return counts


class KeystreamCircuit:
    """The keystream computation KS = Trunc(pi(K)) as a backend-generic circuit."""

    def __init__(self, params: PastaParams, materials: BlockMaterials):
        # Structural equality, not identity: materials deserialized or built
        # from an equal-but-distinct PastaParams instance are just as valid.
        if materials.params != params:
            raise ParameterError("materials were generated for different parameters")
        self.params = params
        self.materials = materials
        self.cost = CircuitCost()

    @classmethod
    def for_block(cls, params: PastaParams, nonce: int, counter: int) -> "KeystreamCircuit":
        """Build the circuit from public data only (what the server knows)."""
        return cls(params, generate_block_materials(params, nonce, counter))

    @staticmethod
    def multiplicative_depth(params: PastaParams) -> int:
        """Ciphertext-multiplication depth: one per Feistel round, two for cube."""
        return (params.rounds - 1) + 2

    # -- evaluation -----------------------------------------------------------

    def _affine(
        self, backend: ArithmeticBackend[T], matrix, state: List[T], rc
    ) -> List[T]:
        t = len(state)
        out: List[T] = []
        for j in range(t):
            acc = backend.mul_plain(state[0], int(matrix[j, 0]))
            self.cost.plain_muls += 1
            for k in range(1, t):
                acc = backend.add(acc, backend.mul_plain(state[k], int(matrix[j, k])))
                self.cost.plain_muls += 1
                self.cost.ct_adds += 1
            out.append(backend.add_plain(acc, int(rc[j])))
            self.cost.plain_adds += 1
        return out

    def _mix(self, backend: ArithmeticBackend[T], xl: List[T], xr: List[T]):
        s = [backend.add(a, b) for a, b in zip(xl, xr)]
        left = [backend.add(a, m) for a, m in zip(xl, s)]
        right = [backend.add(b, m) for b, m in zip(xr, s)]
        self.cost.ct_adds += 3 * len(xl)
        return left, right

    def _feistel(self, backend: ArithmeticBackend[T], state: List[T]) -> List[T]:
        out = [state[0]]
        for j in range(1, len(state)):
            out.append(backend.add(state[j], backend.square(state[j - 1])))
        self.cost.ct_squares += len(state) - 1
        self.cost.ct_adds += len(state) - 1
        return out

    def _cube(self, backend: ArithmeticBackend[T], state: List[T]) -> List[T]:
        out = [backend.mul(backend.square(x), x) for x in state]
        self.cost.ct_squares += len(state)
        self.cost.ct_muls += len(state)
        return out

    def evaluate(self, key: Sequence[T], backend: ArithmeticBackend[T]) -> List[T]:
        """Run the permutation on backend values; returns the t keystream values."""
        params = self.params
        if len(key) != params.key_size:
            raise ParameterError(f"expected {params.key_size} key values, got {len(key)}")
        t = params.t
        xl = list(key[:t])
        xr = list(key[t:])
        for i in range(params.rounds):
            layer = self.materials.layers[i]
            xl = self._affine(backend, self.materials.matrix_l(i), xl, layer.rc_l)
            xr = self._affine(backend, self.materials.matrix_r(i), xr, layer.rc_r)
            xl, xr = self._mix(backend, xl, xr)
            full = xl + xr
            full = self._feistel(backend, full) if i < params.rounds - 1 else self._cube(backend, full)
            xl, xr = full[:t], full[t:]
        final = self.materials.layers[params.rounds]
        xl = self._affine(backend, self.materials.matrix_l(params.rounds), xl, final.rc_l)
        xr = self._affine(backend, self.materials.matrix_r(params.rounds), xr, final.rc_r)
        xl, _ = self._mix(backend, xl, xr)
        return xl

    def decrypt(
        self, key: Sequence[T], ciphertext: Sequence[int], backend: ArithmeticBackend[T]
    ) -> List[T]:
        """Homomorphic HHE decryption of one block: ``m_j = c_j - KS_j``.

        The ciphertext elements are plain (public) integers; the key values
        live in the backend's domain. The result is t backend values
        encrypting/holding the message elements.
        """
        if len(ciphertext) > self.params.t:
            raise ParameterError(f"block holds at most t={self.params.t} elements")
        keystream = self.evaluate(key, backend)
        out: List[T] = []
        for c, ks in zip(ciphertext, keystream):
            out.append(backend.add_plain(backend.neg(ks), int(c)))
        return out
