"""Ciphertext serialization: bit-packing field elements at omega bits.

The link-budget numbers of paper Sec. V assume ciphertext elements are
transmitted at the modulus width (17 bits/element -> 68 B per PASTA-4
block; the paper's 33-bit setting gives the quoted 132 B). This module
makes that concrete: elements are packed little-endian-first into a byte
string at exactly ``bits`` bits each, so the sizes used by the Fig. 8
model are produced by running code, not arithmetic alone.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ParameterError


def pack_elements(elements: Sequence[int], bits: int) -> bytes:
    """Pack integers into ``bits``-bit fields (LSB-first bit order)."""
    if bits < 1 or bits > 64:
        raise ParameterError(f"bits must be in [1, 64], got {bits}")
    acc = 0
    acc_bits = 0
    out = bytearray()
    for value in elements:
        if not 0 <= value < (1 << bits):
            raise ParameterError(f"element {value} does not fit in {bits} bits")
        acc |= value << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def unpack_elements(data: bytes, bits: int, count: int) -> List[int]:
    """Inverse of :func:`pack_elements` for a known element count."""
    if bits < 1 or bits > 64:
        raise ParameterError(f"bits must be in [1, 64], got {bits}")
    needed = (count * bits + 7) // 8
    if len(data) < needed:
        raise ParameterError(f"need {needed} bytes for {count} x {bits}-bit elements, got {len(data)}")
    acc = int.from_bytes(data[:needed], "little")
    mask = (1 << bits) - 1
    return [(acc >> (i * bits)) & mask for i in range(count)]


def serialized_block_bytes(t: int, bits: int) -> int:
    """Wire size of one t-element block at ``bits`` bits per element."""
    return (t * bits + 7) // 8


def serialize_ciphertext(elements: Sequence[int], p: int) -> bytes:
    """Serialize ciphertext elements at the modulus width."""
    return pack_elements([int(e) for e in elements], p.bit_length())


def deserialize_ciphertext(data: bytes, p: int, count: int) -> List[int]:
    """Inverse of :func:`serialize_ciphertext`; validates range."""
    elements = unpack_elements(data, p.bit_length(), count)
    for e in elements:
        if e >= p:
            raise ParameterError(f"decoded element {e} not reduced mod {p}")
    return elements
