"""Per-block XOF instantiation for PASTA (paper Fig. 2).

The nonce and counter are *public*: the server re-derives the same matrices
and round constants when evaluating the decryption circuit homomorphically.
The exact byte-level instantiation below is self-defined (the upstream
PASTA test vectors are not reachable offline — see DESIGN.md Sec. 2); every
component of this repository (software cipher, hardware model, SoC
peripheral, HHE server) derives its randomness through this one function,
so all of them agree bit-exactly.

Layout absorbed into SHAKE128::

    "PASTA-on-Edge-v1" || t (2B BE) || rounds (1B) || p (8B BE)
                       || nonce (8B BE) || counter (8B BE)
"""

from __future__ import annotations

import struct

from repro.errors import ParameterError
from repro.keccak.shake import Shake, shake128
from repro.pasta.params import PastaParams

DOMAIN_TAG = b"PASTA-on-Edge-v1"

_U64_MAX = (1 << 64) - 1


def encode_block_seed(params: PastaParams, nonce: int, counter: int) -> bytes:
    """Serialize the public per-block seed material.

    Every field must fit its wire slot; an out-of-range value raises
    :class:`ParameterError` rather than leaking ``struct.error`` from the
    packing internals.
    """
    if not 0 <= params.p <= _U64_MAX:
        raise ParameterError(f"modulus must fit in 64 bits, got {params.p}")
    if not 0 <= nonce <= _U64_MAX:
        raise ParameterError(f"nonce must fit in 64 bits, got {nonce}")
    if not 0 <= counter <= _U64_MAX:
        raise ParameterError(f"counter must fit in 64 bits, got {counter}")
    return DOMAIN_TAG + struct.pack(">HBQQQ", params.t, params.rounds, params.p, nonce, counter)


def block_xof(params: PastaParams, nonce: int, counter: int) -> Shake:
    """SHAKE128 instance seeded with the public per-block material."""
    return shake128(encode_block_seed(params, nonce, counter))
