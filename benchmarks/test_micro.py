"""Component microbenchmarks: the primitives behind every reproduced number."""

import numpy as np
import pytest

from repro.baselines import Aes128
from repro.ff import P17, P60, PrimeField, make_reducer
from repro.fhe import NegacyclicNtt
from repro.pasta import PASTA_4, Pasta, generate_matrix, random_key, streaming_mat_vec

F17 = PrimeField(P17)


def test_modular_reduction_fermat(benchmark):
    reducer = make_reducer(P17)
    x = (P17 - 2) * (P17 - 3)
    assert benchmark(reducer.reduce, x) == x % P17


def test_matgen_streaming_matvec_t32(benchmark):
    rng = np.random.default_rng(1)
    alpha = F17.array(rng.integers(1, P17, size=32))
    x = F17.array(rng.integers(0, P17, size=32))
    result = benchmark(streaming_mat_vec, F17, alpha, x)
    assert np.array_equal(result, F17.mat_vec(generate_matrix(F17, alpha), x))


def test_pasta4_reference_block(benchmark):
    cipher = Pasta(PASTA_4, random_key(PASTA_4))
    ks = benchmark(cipher.keystream_block, 0, 0)
    assert ks.shape == (32,)


def test_aes128_block(benchmark):
    """Traditional SE contrast (Sec. I-A): AES block vs PASTA block."""
    aes = Aes128(bytes(range(16)))
    ct = benchmark(aes.encrypt_block, bytes(16))
    assert len(ct) == 16


def test_ntt_forward_1024(benchmark):
    ntt = NegacyclicNtt(1024, P60)
    poly = list(range(1024))
    out = benchmark(ntt.forward, poly)
    assert len(out) == 1024
