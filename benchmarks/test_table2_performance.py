"""Bench: regenerate Table II (block encryption on FPGA/ASIC/RISC-V vs CPU).

The timed kernels are the actual block simulations whose cycle counts make
up the reproduced rows: the cycle-accurate accelerator model for PASTA-4
and PASTA-3, and the full RISC-V SoC run (ISS + peripheral).
"""

import pytest

from repro.eval import EXPERIMENTS
from repro.hw import PastaAccelerator
from repro.pasta import PASTA_3, PASTA_4, random_key
from repro.soc import PastaSoC


@pytest.fixture(scope="module")
def table2_text():
    return EXPERIMENTS["table2"](n_nonces=3).render()


def test_pasta4_accelerator_block(benchmark, table2_text, capsys):
    accel = PastaAccelerator(PASTA_4, random_key(PASTA_4))
    _, report = benchmark(accel.keystream_block, 1, 0)
    assert 1_500 < report.total_cycles < 1_800
    with capsys.disabled():
        print()
        print(table2_text)


def test_pasta3_accelerator_block(benchmark):
    accel = PastaAccelerator(PASTA_3, random_key(PASTA_3))
    _, report = benchmark.pedantic(accel.keystream_block, args=(1, 0), rounds=3, iterations=1)
    assert 4_500 < report.total_cycles < 6_000


def test_pasta4_soc_block(benchmark):
    soc = PastaSoC(PASTA_4)
    key = [int(k) for k in random_key(PASTA_4)]
    message = list(range(32))
    result = benchmark.pedantic(
        soc.run_encryption, args=(key, message, 5), rounds=3, iterations=1
    )
    assert result.cycles_per_block > result.accel_cycles_per_block
