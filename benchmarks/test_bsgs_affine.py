"""Bench: BSGS rotation-based packed transciphering vs the tensor path.

The tentpole number for the Galois-rotation work: an END-TO-END
``transcipher_blocks`` run of the batched HHE server, timed for both
RNS evaluation engines on the SAME scheme and the SAME block batch:

* ``tensor`` — t ciphertexts per state, t^2 plain muls per affine layer
  side (the previous fastest path);
* ``bsgs`` — ONE packed ciphertext per state side, the affine layer as a
  baby-step/giant-step diagonal sum: t diagonal plain muls and
  O(sqrt t) Galois rotations per side, amortized over every block packed
  into the slot groups.

Nothing is extrapolated: parameters are sized (t = 32, 2 rounds, 17-bit
prime, N = 512 so the packed capacity is 8 blocks) so both engines run a
full batch in seconds, and blocks/s is measured from the wall-clock of
the real circuit. The closed-form op-count model
(:func:`repro.pasta.homomorphic_op_counts`) is validated against
instrumented runs of BOTH engines, and the decrypted keystreams are
pinned identical — the packed layout is an amortization, not an
approximation.

Acceptance bar: bsgs >= 1.5x tensor blocks/s, measured. Results land in
``benchmarks/BENCH_bsgs_affine.json`` (CI artifact, gated by
``repro perfgate`` against ``benchmarks/baselines/``).
"""

import json
import time
from pathlib import Path

from repro.fhe import BatchEncoder, Bfv, toy_parameters
from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
from repro.pasta import PASTA_MICRO, Pasta, PastaParams, homomorphic_op_counts, random_key

SPEEDUP_FLOOR = 1.5
BENCH_JSON = Path(__file__).parent / "BENCH_bsgs_affine.json"

#: Reduced PASTA instance for the measured run: PASTA-4's state size
#: (t = 32) so the BSGS split is the real (8, 4), with rounds/modulus
#: small enough for a seconds-scale run. NOT SECURE — benchmark-only.
PASTA_BSGS = PastaParams(name="pasta-bsgs", t=32, rounds=2, p=PASTA_MICRO.p, secure=False)
N = 512
#: Wider than the tensor bench's 170: each Galois key switch adds the same
#: ~62-bit base-T noise floor relinearization pays once, and the packed
#: plain-mul rows carry full-ring norms — the BSGS path needs ~30 more
#: bits of q headroom than the tensor path for the same circuit depth.
LOG2_Q = 240
PRIME_BITS = 26
BLOCKS = 8  #: exactly the packed capacity: (N/2) / t slot groups per row


def test_bsgs_throughput(capsys):
    params = toy_parameters(PASTA_BSGS.p, n=N, log2_q=LOG2_Q, prime_bits=PRIME_BITS)
    scheme = Bfv(params, seed=b"bsgs-bench")
    sk, pk, rlk = scheme.keygen()
    gk = scheme.rotation_keygen(
        sk, BatchedHheServer.required_rotation_steps(PASTA_BSGS, N)
    )
    encoder = BatchEncoder(params.n, PASTA_BSGS.p)
    key = random_key(PASTA_BSGS, seed=b"bsgs-bench")
    enc_key = encrypt_key_batched(scheme, pk, encoder, key)
    cipher = Pasta(PASTA_BSGS, key)
    messages = [
        [(31 * b + j) % PASTA_BSGS.p for j in range(PASTA_BSGS.t)] for b in range(BLOCKS)
    ]
    blocks = [
        [int(x) for x in cipher.encrypt_block(m, nonce=5, counter=c)]
        for c, m in enumerate(messages)
    ]
    counters = list(range(BLOCKS))

    report = {
        "pasta": {"name": PASTA_BSGS.name, "t": PASTA_BSGS.t, "rounds": PASTA_BSGS.rounds},
        "bfv": {"n": N, "log2_q": LOG2_Q, "prime_bits": PRIME_BITS},
        "blocks": BLOCKS,
        "op_counts": {
            engine: homomorphic_op_counts(PASTA_BSGS, engine=engine)
            for engine in ("slots", "bsgs")
        },
        "engines": {},
    }
    decryptions = {}
    for engine in ("tensor", "bsgs"):
        server = BatchedHheServer(
            PASTA_BSGS, scheme, rlk, encoder, enc_key,
            engine=engine, galois_keys=gk if engine == "bsgs" else None,
        )
        # Warm run: populates the prepared-plaintext LRUs (cached across
        # calls in production) so the timed run measures the evaluation.
        warm = server.transcipher_blocks(blocks, nonce=5, counters=counters)
        assert decrypt_batched_result(scheme, sk, encoder, warm) == messages
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            result = server.transcipher_blocks(blocks, nonce=5, counters=counters)
            best = min(best, time.perf_counter() - start)
        decryptions[engine] = decrypt_batched_result(scheme, sk, encoder, result)
        formula = "bsgs" if engine == "bsgs" else "slots"
        measured = {
            k: getattr(result.ops, k) for k in homomorphic_op_counts(PASTA_BSGS, formula)
        }
        assert measured == homomorphic_op_counts(PASTA_BSGS, engine=formula), (
            engine, measured,
        )
        budget = min(scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts)
        assert budget > 0, f"{engine} path out of noise budget ({budget:.1f} bits)"
        report["engines"][engine] = {
            "eval_s": best,
            "blocks_per_s": BLOCKS / best,
            "ciphertexts": len(result.ciphertexts),
            "noise_budget_bits": budget,
        }

    # The packed path must reproduce the tensor path's plaintexts exactly.
    assert decryptions["bsgs"] == decryptions["tensor"] == messages

    speedup = (
        report["engines"]["bsgs"]["blocks_per_s"]
        / report["engines"]["tensor"]["blocks_per_s"]
    )
    report["speedup_vs_tensor"] = speedup
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"Packed BSGS {PASTA_BSGS.name} transciphering "
            f"(t={PASTA_BSGS.t}, N={N}, log2 q={LOG2_Q}, {BLOCKS} blocks):"
        )
        for name, eng in report["engines"].items():
            print(
                f"  {name:7s} {eng['eval_s']:7.2f} s/evaluation  "
                f"{eng['blocks_per_s']:8.2f} blocks/s  "
                f"({eng['ciphertexts']} output cts)"
            )
        print(f"  speedup  {speedup:6.1f}x vs tensor  (floor {SPEEDUP_FLOOR}x)")
        print(f"  -> {BENCH_JSON.name}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"bsgs path only {speedup:.2f}x over the tensor path; "
        f"floor is {SPEEDUP_FLOOR}x"
    )
