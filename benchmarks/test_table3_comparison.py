"""Bench: regenerate Table III (vs prior client accelerators + speedups)."""

import pytest

from repro.baselines import RISE, cycle_reduction_vs_cpu, per_element_speedup
from repro.eval import EXPERIMENTS
from repro.eval.table3 import this_work_measurement


@pytest.fixture(scope="module")
def table3():
    return EXPERIMENTS["table3"](n_nonces=2)


def test_table3_comparison(benchmark, table3, capsys):
    tw = benchmark.pedantic(this_work_measurement, kwargs={"n_nonces": 1}, rounds=2, iterations=1)
    # The paper's headline ratios must hold in shape.
    assert 700 < cycle_reduction_vs_cpu(tw) < 1000  # paper: 857x
    assert 80 < per_element_speedup(tw, RISE, "asic") < 110  # paper: ~97x
    with capsys.disabled():
        print()
        print(table3.render())
