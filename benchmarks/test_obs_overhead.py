"""Bench: observability overhead on the keystream hot path.

``KeystreamEngine.keystream_pairs`` is the instrumented wrapper (labeled
lane histogram + traced span + modeled-cycle annotation) around the raw
``_keystream_pairs`` fast path. Instrumentation that perturbs the hot
path it measures is worse than none, so this bench times both on the same
workload and asserts the wrapper costs < 5% — the acceptance bar the obs
layer was designed to (the per-pass overhead is a few registry lookups,
one span object, and one cached multiply, amortized across the whole
batched pass).

The two variants are timed *interleaved* (raw, instrumented, raw, ...)
and compared at their per-variant minima: back-to-back pairs see the same
thermal/frequency state, and the minimum is the least-noise estimate of
the true cost — a sequential A-then-B design reads CPU drift as fake
overhead. The result lands in ``benchmarks/BENCH_obs_overhead.json``,
which the perf-gate also compares against its committed baseline.
"""

import json
import time
from pathlib import Path

from repro.obs import MetricsRegistry, Tracer, set_registry, set_tracer
from repro.pasta import PASTA_TOY, KeystreamEngine, random_key

OVERHEAD_FLOOR_PCT = 5.0
BATCH = 256
REPEATS = 15
BENCH_JSON = Path(__file__).parent / "BENCH_obs_overhead.json"


def _pass_us(fn, key, pairs) -> float:
    start = time.perf_counter()
    fn(key, pairs)
    return (time.perf_counter() - start) * 1e6


def test_instrumentation_overhead_under_floor(capsys):
    params = PASTA_TOY
    key = random_key(params, b"obs-overhead-bench")
    engine = KeystreamEngine(params, cache_size=0)
    pairs = [(nonce, 0) for nonce in range(BATCH)]

    # Instrumented path records into throwaway globals (and warms the
    # modeled-cycle cache) so the measurement isolates steady-state cost.
    previous_registry = set_registry(MetricsRegistry())
    previous_tracer = set_tracer(Tracer())
    try:
        engine.keystream_pairs(key, pairs)  # warm-up: lru caches, allocator
        engine._keystream_pairs(key, pairs)
        raw_times, instrumented_times = [], []
        for _ in range(REPEATS):
            raw_times.append(_pass_us(engine._keystream_pairs, key, pairs))
            instrumented_times.append(_pass_us(engine.keystream_pairs, key, pairs))
        raw_us = min(raw_times)
        instrumented_us = min(instrumented_times)
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)

    overhead_pct = max(0.0, (instrumented_us - raw_us) / raw_us * 100.0)

    report = {
        "params": params.name,
        "batch": BATCH,
        "repeats": REPEATS,
        "raw_us_per_pass": round(raw_us, 1),
        "instrumented_us_per_pass": round(instrumented_us, 1),
        "overhead_pct": round(overhead_pct, 2),
        "overhead_floor_pct": OVERHEAD_FLOOR_PCT,
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(f"obs overhead on keystream_pairs ({params.name}, batch {BATCH}):")
        print(f"  raw           {raw_us:10.1f} us/pass")
        print(f"  instrumented  {instrumented_us:10.1f} us/pass  (+{overhead_pct:.2f}%)")

    assert overhead_pct < OVERHEAD_FLOOR_PCT, (
        f"instrumentation costs {overhead_pct:.2f}% on keystream_pairs "
        f"({instrumented_us:.0f} vs {raw_us:.0f} us/pass); floor is {OVERHEAD_FLOOR_PCT}%"
    )
