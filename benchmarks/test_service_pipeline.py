"""Bench: streaming pipeline vs the serial per-frame encrypt loop.

The acceptance bar for the service is a 4-worker pipeline sustaining
>= 3x the frames/s of the serial ``encrypt_frame`` loop at toy
parameters. With one CPU in the harness the speedup comes from the
cross-frame keystream batching (one ``keystream_pairs`` pass per 32
in-flight frames) and vectorized synthesis/packing, not thread
parallelism — threads only hide the queue hand-off latency.

A second run injects a 10% drop schedule and must recover every frame
bit-exactly (zero loss). Results — sustained fps, the speedup ratio, and
p50/p99 per-stage latencies from the obs registry — land in
``benchmarks/BENCH_service_pipeline.json`` (the CI artifact of the
service-pipeline smoke job).
"""

import json
import time
from pathlib import Path

import pytest

from repro.apps.video import NonceSequence, encrypt_frame, synthetic_frame
from repro.obs import MetricsRegistry
from repro.pasta import PASTA_TOY, Pasta, random_key
from repro.service import NO_FAULTS, FaultPlan, ServiceConfig, StreamingPipeline, TILE8

SPEEDUP_FLOOR = 3.0
N_FRAMES = 256
DROP_RATE = 0.10
BENCH_JSON = Path(__file__).parent / "BENCH_service_pipeline.json"

STAGES = (
    "service.synthesize.seconds",
    "service.encrypt.seconds",
    "service.recover.seconds",
    "service.frame_latency.seconds",
)


def pipeline_config(**overrides) -> ServiceConfig:
    defaults = dict(
        params=PASTA_TOY,
        resolution=TILE8,
        n_frames=N_FRAMES,
        n_workers=4,
        batch_frames=32,
        worker_batch=32,
        queue_capacity=128,
        timeout_seconds=0.005,
        backoff_base_seconds=0.001,
        backoff_max_seconds=0.01,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def serial_fps() -> float:
    """The baseline: one frame fully encrypted+verified at a time."""
    cipher = Pasta(PASTA_TOY, random_key(PASTA_TOY, b"service-bench"))
    nonces = NonceSequence()
    start = time.perf_counter()
    for frame_id in range(N_FRAMES):
        result = encrypt_frame(cipher, TILE8, nonces, seed=frame_id)
        assert result.ok_roundtrip
    return N_FRAMES / (time.perf_counter() - start)


def stage_latencies(snapshot: dict) -> dict:
    return {
        stage: {k: snapshot[stage][k] for k in ("count", "mean", "p50", "p90", "p99")}
        for stage in STAGES
        if stage in snapshot
    }


def test_pipeline_speedup_and_fault_tolerance(capsys):
    baseline_fps = serial_fps()

    clean_registry = MetricsRegistry()
    clean = StreamingPipeline(pipeline_config(), NO_FAULTS, registry=clean_registry).run()
    speedup = clean.fps / baseline_fps

    # 10% injected drops: every frame must still arrive, bit-exact.
    faulted_registry = MetricsRegistry()
    plan = FaultPlan(seed=2026, drop_rate=DROP_RATE)
    faulted = StreamingPipeline(pipeline_config(), plan, registry=faulted_registry).run()
    assert len(faulted.frames) == N_FRAMES, "frame loss under injected drops"
    for frame in faulted.frames:
        assert frame.pixels == bytes(synthetic_frame(frame.resolution, frame.frame_id))
    drops = faulted_registry.counter("service.uplink.dropped").value
    retried = sum(1 for n in faulted.attempts.values() if n > 1)
    assert drops > 0, "drop schedule never fired; the tolerance claim is vacuous"

    report = {
        "params": PASTA_TOY.name,
        "resolution": TILE8.name,
        "n_frames": N_FRAMES,
        "n_workers": 4,
        "serial_fps": round(baseline_fps, 1),
        "pipeline_fps": round(clean.fps, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "stage_latencies": stage_latencies(clean.metrics),
        "faulted": {
            "drop_rate": DROP_RATE,
            "fps": round(faulted.fps, 1),
            "frames_recovered": len(faulted.frames),
            "frames_lost": N_FRAMES - len(faulted.frames),
            "uplink_drops": drops,
            "frames_retried": retried,
            "stage_latencies": stage_latencies(faulted.metrics),
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(f"streaming service, {N_FRAMES} x {TILE8.name} frames ({PASTA_TOY.name}):")
        print(f"  serial loop   {baseline_fps:8.1f} frames/s")
        print(f"  pipeline (4w) {clean.fps:8.1f} frames/s  ({speedup:.2f}x)")
        print(
            f"  with {DROP_RATE:.0%} drops: {faulted.fps:8.1f} frames/s, "
            f"{drops} drops, {retried} frames retried, 0 lost"
        )
        enc = clean.metrics["service.encrypt.seconds"]
        print(f"  encrypt stage p50/p99: {enc['p50'] * 1e3:.2f}/{enc['p99'] * 1e3:.2f} ms/batch")

    assert speedup >= SPEEDUP_FLOOR, (
        f"pipeline only {speedup:.2f}x over the serial loop "
        f"({clean.fps:.0f} vs {baseline_fps:.0f} frames/s); floor is {SPEEDUP_FLOOR}x"
    )
