"""Bench: energy-per-element table (the Sec. I-B efficiency claim)."""

from repro.eval import EXPERIMENTS
from repro.hw.energy import energy_advantage_vs_cpu, energy_table
from repro.pasta import PASTA_4


def test_energy_table(benchmark, capsys):
    points = benchmark(energy_table, PASTA_4, 21.4, 1.6, 23.0)
    advantages = energy_advantage_vs_cpu(points)
    assert advantages["ASIC (7/28nm, 1 GHz)"] > 10_000
    with capsys.disabled():
        print()
        print(EXPERIMENTS["energy"](n_nonces=2).render())
