"""Bench: batched keystream engine vs the scalar reference (Sec. IV-B).

The acceptance bar for the batch engine is >= 5x blocks/s over the scalar
path at batch 64 for PASTA-3 (t = 128, omega = 17), measured cold (no LRU
reuse) and bit-exact row-for-row. The measured ratio is printed so the
bench log records the actual speedup, and a warm-cache number shows what
repeated transciphering of the same stream costs.
"""

import time

import numpy as np
import pytest

from repro.pasta import PASTA_3, KeystreamEngine, Pasta, random_key

BATCH = 64
SPEEDUP_FLOOR = 5.0
#: Scalar blocks actually timed; the per-block cost is flat in the block
#: index, so a short sample keeps the bench fast (~150 ms/block).
SCALAR_SAMPLE_BLOCKS = 2


@pytest.fixture(scope="module")
def pasta3():
    return Pasta(PASTA_3, random_key(PASTA_3))


def _scalar_us_per_block(cipher: Pasta, nonce: int) -> float:
    start = time.perf_counter()
    for counter in range(SCALAR_SAMPLE_BLOCKS):
        cipher.keystream_block(nonce, counter)
    return (time.perf_counter() - start) / SCALAR_SAMPLE_BLOCKS * 1e6


def test_batch_keystream_speedup(pasta3, capsys):
    nonce = 42
    scalar_us = _scalar_us_per_block(pasta3, nonce)

    engine = KeystreamEngine(PASTA_3, cache_size=0)  # cold: no LRU assists
    start = time.perf_counter()
    ks = engine.keystream_blocks(pasta3.key, nonce, 0, BATCH)
    batched_us = (time.perf_counter() - start) / BATCH * 1e6

    # Bit-exactness first — a fast wrong keystream is worthless. The scalar
    # sample blocks were derived independently above; spot-check them plus
    # the last row.
    for counter in (0, 1, BATCH - 1):
        expected = pasta3.keystream_block(nonce, counter)
        assert [int(x) for x in ks[counter]] == [int(x) for x in expected]

    speedup = scalar_us / batched_us
    with capsys.disabled():
        print()
        print(f"PASTA-3 keystream, batch {BATCH}:")
        print(f"  scalar   {scalar_us:10.1f} us/block")
        print(f"  batched  {batched_us:10.1f} us/block  ({speedup:.1f}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched engine only {speedup:.2f}x over scalar "
        f"({batched_us:.0f} vs {scalar_us:.0f} us/block); floor is {SPEEDUP_FLOOR}x"
    )


def test_warm_cache_speedup(pasta3, capsys):
    """Second pass over the same (nonce, counter) range rides the LRU."""
    nonce = 43
    engine = KeystreamEngine(PASTA_3, cache_size=BATCH)
    cold = engine.keystream_blocks(pasta3.key, nonce, 0, BATCH)
    start = time.perf_counter()
    warm = engine.keystream_blocks(pasta3.key, nonce, 0, BATCH)
    warm_us = (time.perf_counter() - start) / BATCH * 1e6
    assert np.array_equal(np.asarray(cold), np.asarray(warm))
    info = engine.cache_info()
    assert info.hits >= BATCH
    with capsys.disabled():
        print(f"  warm LRU {warm_us:10.1f} us/block  (cache {info.hits} hits)")
