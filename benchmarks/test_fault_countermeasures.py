"""Bench: fault attack + temporal-redundancy countermeasure (future work)."""

import pytest

from repro.attacks import FaultSpec, keystream_with_fault, recover_key_from_linearized
from repro.eval import EXPERIMENTS
from repro.pasta import PASTA_TOY, random_key


@pytest.fixture(scope="module")
def countermeasure_text():
    return EXPERIMENTS["countermeasures"](n_nonces=2).render()


def test_linearization_key_recovery(benchmark, countermeasure_text, capsys):
    key = random_key(PASTA_TOY, seed=b"bench-victim")
    faulty = [
        (1, c, keystream_with_fault(PASTA_TOY, key, 1, c, FaultSpec("skip-all-sboxes")))
        for c in (0, 1)
    ]
    recovered = benchmark(recover_key_from_linearized, PASTA_TOY, faulty)
    assert list(recovered) == list(key)
    with capsys.disabled():
        print()
        print(countermeasure_text)


def test_fault_injection_overhead(benchmark):
    key = random_key(PASTA_TOY, seed=b"bench-victim")
    ks = benchmark(
        keystream_with_fault, PASTA_TOY, key, 2, 0, FaultSpec("corrupt-element", 1, 2)
    )
    assert ks.shape == (PASTA_TOY.t,)
