"""Bench: homomorphic PASTA-3 transciphering throughput, RNS vs big-int.

The tentpole number for the RNS/CRT polynomial engine: homomorphic PASTA-3
keystream **blocks/s** on the batched HHE server, with the scalar big-int
engine as the reference. A full PASTA-3 evaluation is 131k plaintext
multiplications — hours on the scalar path — so the benchmark measures the
BFV primitives both engines actually execute at full size (N = 1024,
log2 q = 250) and extrapolates through the circuit's exact operation
counts. The count formulas are not trusted: they are validated against a
real instrumented PASTA_MICRO server evaluation, which also pins the two
engines bit-exact end-to-end (same decrypted keystream; noise budgets
equal, satisfying the <= 1 bit criterion exactly).

Acceptance bar: >= 5x extrapolated blocks/s over the scalar engine.
Results land in ``benchmarks/BENCH_transcipher_throughput.json`` (the CI
artifact of the transcipher-throughput smoke job).
"""

import json
import time
from pathlib import Path

import pytest

from repro.fhe import BatchEncoder, Bfv, toy_parameters
from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
from repro.pasta import PASTA_3, PASTA_MICRO, Pasta, random_key

SPEEDUP_FLOOR = 5.0
N = 1024
LOG2_Q = 250
BENCH_JSON = Path(__file__).parent / "BENCH_transcipher_throughput.json"

#: Primitive timing repetitions per engine (the scalar engine is ~2 s per
#: square+relin at full size, so it gets short samples).
REPS = {"rns": 8, "bigint": 2}


def op_counts(t: int, r: int) -> dict:
    """Exact homomorphic op counts of one batched PASTA evaluation.

    Derived from ``BatchedHheServer.transcipher_blocks``: 2(r+1) affine
    layers (t^2 plain muls, t(t-1) adds, t plain adds each), r+1 mixes
    (3t adds), r-1 Feistel layers (2t-1 squares/adds), one cube layer
    (2t squares, 2t muls), and the final t keystream-subtraction adds.
    """
    return {
        "plain_muls": 2 * (r + 1) * t * t,
        "plain_adds": 2 * (r + 1) * t + t,
        "adds": 2 * (r + 1) * t * (t - 1) + 3 * t * (r + 1) + (r - 1) * (2 * t - 1),
        "squares": (r - 1) * (2 * t - 1) + 2 * t,
        "muls": 2 * t,
        "relins": (r - 1) * (2 * t - 1) + 2 * t + 2 * t,
    }


def test_op_count_formulas_match_real_run():
    """The extrapolation formulas must match an instrumented evaluation."""
    params = toy_parameters(PASTA_MICRO.p, n=256, log2_q=190)
    scheme = Bfv(params, seed=b"counts")
    sk, pk, rlk = scheme.keygen()
    encoder = BatchEncoder(params.n, PASTA_MICRO.p)
    key = random_key(PASTA_MICRO, seed=b"counts")
    server = BatchedHheServer(
        PASTA_MICRO, scheme, rlk, encoder, encrypt_key_batched(scheme, pk, encoder, key)
    )
    cipher = Pasta(PASTA_MICRO, key)
    blocks = [
        [int(c) for c in cipher.encrypt_block(m, nonce=1, counter=i)]
        for i, m in enumerate([[7, 9], [3, 4]])
    ]
    result = server.transcipher_blocks(blocks, nonce=1, counters=[0, 1])
    expected = op_counts(PASTA_MICRO.t, PASTA_MICRO.rounds)
    measured = {k: getattr(result.ops, k) for k in expected}
    assert measured == expected, (measured, expected)


def test_micro_transcipher_bit_exact_across_engines():
    """Both engines transcipher the same stream to identical plaintexts."""
    params = toy_parameters(PASTA_MICRO.p, n=256, log2_q=190)
    key = random_key(PASTA_MICRO, seed=b"parity")
    cipher = Pasta(PASTA_MICRO, key)
    message = [[101, 2024], [55, 66]]
    blocks = [
        [int(x) for x in cipher.encrypt_block(m, nonce=9, counter=c)]
        for c, m in enumerate(message)
    ]

    budgets = {}
    for engine in ("rns", "bigint"):
        scheme = Bfv(params, seed=b"parity", engine=engine)
        sk, pk, rlk = scheme.keygen()
        encoder = BatchEncoder(params.n, PASTA_MICRO.p)
        server = BatchedHheServer(
            PASTA_MICRO, scheme, rlk, encoder, encrypt_key_batched(scheme, pk, encoder, key)
        )
        result = server.transcipher_blocks(blocks, nonce=9, counters=[0, 1])
        assert decrypt_batched_result(scheme, sk, encoder, result) == message
        budgets[engine] = min(
            scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts
        )
    # Bit-exact engines leave identical noise — well within the 1-bit pin.
    assert abs(budgets["rns"] - budgets["bigint"]) <= 1.0
    assert budgets["rns"] == budgets["bigint"]


def _time_primitives(engine: str) -> dict:
    """Seconds per BFV primitive at full transciphering size."""
    params = toy_parameters(PASTA_3.p, n=N, log2_q=LOG2_Q)
    scheme = Bfv(params, seed=b"throughput", engine=engine)
    sk, pk, rlk = scheme.keygen()
    encoder = BatchEncoder(params.n, PASTA_3.p)
    ct = scheme.encrypt_poly(pk, encoder.encode([3] * N))
    ct2 = scheme.encrypt_poly(pk, encoder.encode([5] * N))
    plain = encoder.encode(list(range(1, N + 1)))
    mul_handle = scheme.prepare_mul_plain(plain)
    add_handle = scheme.prepare_add_plain(plain)
    scheme.mul_plain_poly(ct, mul_handle)  # warm the handle's eval cache

    reps = REPS[engine]

    def timed(fn, n=reps):
        start = time.perf_counter()
        for _ in range(n):
            out = fn()
        return (time.perf_counter() - start) / n, out

    times = {}
    times["plain_muls"], _ = timed(lambda: scheme.mul_plain_poly(ct, mul_handle))
    times["plain_adds"], _ = timed(lambda: scheme.add_plain_poly(ct, add_handle))
    times["adds"], _ = timed(lambda: scheme.add(ct, ct2), n=4 * reps)
    times["squares"], sq = timed(lambda: scheme.square(ct, rlk), n=max(1, reps // 2))
    times["muls"], _ = timed(lambda: scheme.multiply(ct, ct2, rlk), n=max(1, reps // 2))
    times["relins"] = 0.0  # folded into squares/muls timings
    assert scheme.decrypt_poly(sk, sq)[:1]  # sanity: still decryptable
    return times


def test_transcipher_throughput(capsys):
    counts = op_counts(PASTA_3.t, PASTA_3.rounds)
    report = {
        "pasta": PASTA_3.name,
        "bfv": {"n": N, "log2_q": LOG2_Q},
        "op_counts": counts,
        "engines": {},
    }
    for engine in ("rns", "bigint"):
        prim = _time_primitives(engine)
        eval_s = sum(counts[k] * prim[k] for k in counts)
        blocks_s = N / eval_s  # one slot-batched evaluation carries N blocks
        report["engines"][engine] = {
            "primitives_s": prim,
            "eval_s": eval_s,
            "blocks_per_s": blocks_s,
        }

    rns = report["engines"]["rns"]
    ref = report["engines"]["bigint"]
    speedup = rns["blocks_per_s"] / ref["blocks_per_s"]
    report["speedup"] = speedup
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(f"Homomorphic {PASTA_3.name} transciphering (N={N}, log2 q={LOG2_Q}):")
        for name, eng in report["engines"].items():
            print(
                f"  {name:7s} {eng['eval_s']:9.1f} s/evaluation  "
                f"{eng['blocks_per_s']:8.3f} blocks/s"
            )
        print(f"  speedup  {speedup:8.1f}x  (floor {SPEEDUP_FLOOR}x)")
        print(f"  -> {BENCH_JSON.name}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"RNS engine only {speedup:.2f}x over the scalar reference; "
        f"floor is {SPEEDUP_FLOOR}x"
    )
