"""Bench: measured homomorphic PASTA transciphering, tensor vs scalar path.

The tentpole number for the fused ciphertext-tensor evaluation path: an
END-TO-END ``transcipher_blocks`` run of the batched HHE server, timed for
both evaluation engines on the SAME RNS scheme:

* ``scalar`` — one ciphertext object per state element, one scheme call
  per homomorphic op (the object-per-op reference path);
* ``tensor`` — the whole state in one (t, 2, L, N) NTT-domain residue
  tensor, one einsum per residue prime per affine layer side, batched
  S-box kernels.

Nothing is extrapolated: the parameters are sized (t = 64, 2 rounds,
17-bit prime, N = 128, ~170-bit q) so a full evaluation runs in seconds
on the scalar path, and blocks/s is measured from the wall-clock of the
real circuit. The closed-form op-count model
(:func:`repro.pasta.homomorphic_op_counts`) is validated against
instrumented runs of BOTH engines, which are also pinned bit-exact — same
ciphertext residues, same decrypted blocks, same noise budgets.

Acceptance bar: tensor >= 5x scalar blocks/s, measured. Results land in
``benchmarks/BENCH_hom_affine.json`` (CI artifact, gated by
``repro perfgate`` against ``benchmarks/baselines/``).
"""

import json
import time
from pathlib import Path

from repro.fhe import BatchEncoder, Bfv, toy_parameters
from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
from repro.pasta import PASTA_MICRO, Pasta, PastaParams, homomorphic_op_counts, random_key

SPEEDUP_FLOOR = 5.0
BENCH_JSON = Path(__file__).parent / "BENCH_hom_affine.json"

#: Reduced PASTA instance for the measured run: t large enough that the
#: affine layers carry PASTA-3-like weight (t^2 plain muls per side), with
#: rounds/modulus small enough that the scalar path finishes in seconds.
#: NOT SECURE — benchmark-only.
PASTA_BENCH = PastaParams(name="pasta-bench", t=64, rounds=2, p=PASTA_MICRO.p, secure=False)
N = 128
LOG2_Q = 170
PRIME_BITS = 26
BLOCKS = 16  #: slot-packed blocks per evaluation (evaluation cost is B-independent)


def test_op_count_formulas_match_real_run():
    """The closed-form op counts must match instrumented runs of both engines."""
    params = toy_parameters(PASTA_MICRO.p, n=256, log2_q=190)
    scheme = Bfv(params, seed=b"counts")
    sk, pk, rlk = scheme.keygen()
    encoder = BatchEncoder(params.n, PASTA_MICRO.p)
    key = random_key(PASTA_MICRO, seed=b"counts")
    enc_key = encrypt_key_batched(scheme, pk, encoder, key)
    cipher = Pasta(PASTA_MICRO, key)
    blocks = [
        [int(c) for c in cipher.encrypt_block(m, nonce=1, counter=i)]
        for i, m in enumerate([[7, 9], [3, 4]])
    ]
    expected = homomorphic_op_counts(PASTA_MICRO)
    for engine in ("scalar", "tensor"):
        server = BatchedHheServer(PASTA_MICRO, scheme, rlk, encoder, enc_key, engine=engine)
        result = server.transcipher_blocks(blocks, nonce=1, counters=[0, 1])
        measured = {k: getattr(result.ops, k) for k in expected}
        assert measured == expected, (engine, measured, expected)


def test_micro_transcipher_bit_exact_across_engines():
    """RNS (tensor) and big-int (scalar) transcipher identical plaintexts."""
    params = toy_parameters(PASTA_MICRO.p, n=256, log2_q=190)
    key = random_key(PASTA_MICRO, seed=b"parity")
    cipher = Pasta(PASTA_MICRO, key)
    message = [[101, 2024], [55, 66]]
    blocks = [
        [int(x) for x in cipher.encrypt_block(m, nonce=9, counter=c)]
        for c, m in enumerate(message)
    ]

    budgets = {}
    for engine in ("rns", "bigint"):
        scheme = Bfv(params, seed=b"parity", engine=engine)
        sk, pk, rlk = scheme.keygen()
        encoder = BatchEncoder(params.n, PASTA_MICRO.p)
        # engine="auto": the RNS scheme evaluates on the tensor path, the
        # big-int scheme on the scalar path — parity across all of it.
        server = BatchedHheServer(
            PASTA_MICRO, scheme, rlk, encoder, encrypt_key_batched(scheme, pk, encoder, key)
        )
        result = server.transcipher_blocks(blocks, nonce=9, counters=[0, 1])
        assert decrypt_batched_result(scheme, sk, encoder, result) == message
        budgets[engine] = min(
            scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts
        )
    # Bit-exact engines leave identical noise — well within the 1-bit pin.
    assert budgets["rns"] == budgets["bigint"]


def _ciphertext_ints(scheme, result):
    return [
        [scheme.engine.to_ints(part) for part in ct.parts] for ct in result.ciphertexts
    ]


def test_transcipher_throughput(capsys):
    params = toy_parameters(PASTA_BENCH.p, n=N, log2_q=LOG2_Q, prime_bits=PRIME_BITS)
    scheme = Bfv(params, seed=b"throughput")
    sk, pk, rlk = scheme.keygen()
    encoder = BatchEncoder(params.n, PASTA_BENCH.p)
    key = random_key(PASTA_BENCH, seed=b"throughput")
    enc_key = encrypt_key_batched(scheme, pk, encoder, key)
    cipher = Pasta(PASTA_BENCH, key)
    messages = [
        [(31 * b + j) % PASTA_BENCH.p for j in range(PASTA_BENCH.t)] for b in range(BLOCKS)
    ]
    blocks = [
        [int(x) for x in cipher.encrypt_block(m, nonce=3, counter=c)]
        for c, m in enumerate(messages)
    ]
    counters = list(range(BLOCKS))

    report = {
        "pasta": {"name": PASTA_BENCH.name, "t": PASTA_BENCH.t, "rounds": PASTA_BENCH.rounds},
        "bfv": {"n": N, "log2_q": LOG2_Q, "prime_bits": PRIME_BITS},
        "blocks": BLOCKS,
        "op_counts": homomorphic_op_counts(PASTA_BENCH),
        "engines": {},
    }
    outputs = {}
    for engine in ("scalar", "tensor"):
        server = BatchedHheServer(PASTA_BENCH, scheme, rlk, encoder, enc_key, engine=engine)
        # Warm run: populates the prepared-plaintext LRUs (cached across
        # calls in production) so the timed run measures the evaluation.
        warm = server.transcipher_blocks(blocks, nonce=3, counters=counters)
        assert decrypt_batched_result(scheme, sk, encoder, warm) == messages
        reps = 3 if engine == "tensor" else 1
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            result = server.transcipher_blocks(blocks, nonce=3, counters=counters)
            best = min(best, time.perf_counter() - start)
        outputs[engine] = result
        report["engines"][engine] = {
            "eval_s": best,
            "blocks_per_s": BLOCKS / best,
            "noise_budget_bits": min(
                scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts
            ),
        }

    # The two paths must agree to the ciphertext residue, not just the
    # decryption: the tensor path is an amortization, not an approximation.
    assert _ciphertext_ints(scheme, outputs["scalar"]) == _ciphertext_ints(
        scheme, outputs["tensor"]
    )

    speedup = (
        report["engines"]["tensor"]["blocks_per_s"]
        / report["engines"]["scalar"]["blocks_per_s"]
    )
    report["speedup"] = speedup
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"Homomorphic {PASTA_BENCH.name} transciphering "
            f"(t={PASTA_BENCH.t}, N={N}, log2 q={LOG2_Q}, {BLOCKS} blocks):"
        )
        for name, eng in report["engines"].items():
            print(
                f"  {name:7s} {eng['eval_s']:7.2f} s/evaluation  "
                f"{eng['blocks_per_s']:8.2f} blocks/s"
            )
        print(f"  speedup  {speedup:6.1f}x  (floor {SPEEDUP_FLOOR}x)")
        print(f"  -> {BENCH_JSON.name}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"tensor path only {speedup:.2f}x over the scalar object-per-op path; "
        f"floor is {SPEEDUP_FLOOR}x"
    )
