"""Bench: regenerate Fig. 8 (video frames/s over 5G, TW vs RISE).

The timed kernel is a *functional* frame encryption (pack -> encrypt ->
decrypt -> verify) at a reduced frame size, backing the analytic link
budget with working code.
"""

import pytest

from repro.apps import Resolution, encrypt_frame
from repro.eval import EXPERIMENTS
from repro.pasta import PASTA_4, Pasta, random_key


@pytest.fixture(scope="module")
def fig8_text():
    return EXPERIMENTS["fig8"]().render()


def test_fig8_video_fps(benchmark, fig8_text, capsys):
    tiny = Resolution("tiny-frame", 16, 8)  # two PASTA-4 blocks
    cipher = Pasta(PASTA_4, random_key(PASTA_4))
    result = benchmark.pedantic(
        encrypt_frame,
        args=(cipher, tiny, 3),
        kwargs={"allow_nonce_reuse": True},  # benchmark repeats the same frame
        rounds=3,
        iterations=1,
    )
    assert result.ok_roundtrip
    with capsys.disabled():
        print()
        print(fig8_text)
