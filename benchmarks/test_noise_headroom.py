"""Bench: end-to-end noise headroom — modeled ledger vs measured budget.

The noise ledger (:mod:`repro.obs.noise`) exists so the *server* can
watch its own headroom without the secret key. This bench is its
acceptance harness: run a full PASTA transciphering circuit on every
evaluation engine (``scalar``, ``tensor``, ``bsgs``) at both PASTA prime
widths (17- and 33-bit ω), then — holding ``sk`` on the harness side —
check the ledger's closed-form bound against the exact measured
invariant noise:

* **soundness**: modeled headroom <= measured headroom on every output
  ciphertext (the model may be pessimistic, never optimistic);
* **viability**: modeled headroom stays positive with margin at the end
  of the circuit — the worst path consumes at most ``NOISE_CEILING`` of
  the budget, gated absolutely via ``floor:worst.noise_ceiling``.

Results land in ``benchmarks/BENCH_noise_headroom.json`` (CI artifact,
gated by ``repro perfgate`` against ``benchmarks/baselines/``).
"""

import json
from pathlib import Path

from repro.fhe import BatchEncoder, Bfv, toy_parameters
from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
from repro.obs.noise import divergence_report
from repro.pasta import Pasta, PastaParams, random_key
from repro.ff.params import P17, P33

BENCH_JSON = Path(__file__).parent / "BENCH_noise_headroom.json"

N = 256
#: label -> (server eval engine, hoisted flag). ``bsgs`` is the shipped
#: default (hoisted baby rotations); ``bsgs_unhoisted`` pins the chained
#: per-rotation keyswitch path so BOTH bsgs_affine growth rules stay under
#: the soundness gate.
ENGINES = {
    "scalar": ("scalar", True),
    "tensor": ("tensor", True),
    "bsgs": ("bsgs", True),
    "bsgs_unhoisted": ("bsgs", False),
}

#: Fraction of the total budget the deepest path may consume end-to-end.
#: The absolute floor gate: over this ceiling the circuit is one bad
#: parameter tweak away from decryption failure, however fast it runs.
NOISE_CEILING = 0.92

#: (omega, plain modulus, log2 q). The 33-bit prime squares the plain-mul
#: growth per level, so its modulus chain carries ~110 more bits for the
#: same 2-round circuit. NOT SECURE — sized for a seconds-scale run.
WIDTHS = ((17, P17, 330), (33, P33, 440))


def _pasta(omega: int, p: int) -> PastaParams:
    return PastaParams(name=f"pasta-noise-{omega}", t=2, rounds=2, p=p, secure=False)


def test_noise_headroom_sound_and_positive(capsys):
    report = {
        "n": N,
        "blocks": 1,
        "noise_ceiling": NOISE_CEILING,
        "prime_widths": {},
    }
    worst = {"engine": None, "omega": None, "noise_fraction": 0.0,
             "noise_ceiling": NOISE_CEILING}
    min_headroom = float("inf")

    for omega, p, log2_q in WIDTHS:
        pasta = _pasta(omega, p)
        params = toy_parameters(p, n=N, log2_q=log2_q)
        scheme = Bfv(params, seed=b"noise-bench")
        sk, pk, rlk = scheme.keygen()
        encoder = BatchEncoder(params.n, p)
        gk = scheme.rotation_keygen(
            sk, BatchedHheServer.required_rotation_steps(pasta, N)
        )
        key = random_key(pasta, seed=b"noise-bench")
        enc_key = encrypt_key_batched(scheme, pk, encoder, key)
        cipher = Pasta(pasta, key)
        message = [(7 * j + 3) % p for j in range(pasta.t)]
        block = [int(x) for x in cipher.encrypt_block(message, nonce=9, counter=0)]

        width = {"log2_q": log2_q, "budget_bits": scheme.noise_model.budget_bits,
                 "engines": {}}
        for engine, (eval_engine, hoisted) in ENGINES.items():
            server = BatchedHheServer(
                pasta, scheme, rlk, encoder, enc_key,
                engine=eval_engine, hoisted=hoisted,
                galois_keys=gk if eval_engine == "bsgs" else None,
            )
            result = server.transcipher_blocks([block], nonce=9, counters=[0])
            assert decrypt_batched_result(scheme, sk, encoder, result) == [message], (
                f"omega={omega} engine={engine}: wrong decryption"
            )

            model = scheme.noise_model
            estimate = model.merge(ct.noise for ct in result.ciphertexts)
            assert estimate is not None, (
                f"omega={omega} engine={engine}: ledger lost provenance"
            )
            modeled = model.headroom_bits(estimate)
            measured = min(
                scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts
            )
            assert modeled <= measured + 1e-9, (
                f"omega={omega} engine={engine}: model optimistic "
                f"({modeled:.2f} modeled > {measured:.2f} measured bits)"
            )
            assert modeled > 0, (
                f"omega={omega} engine={engine}: modeled headroom exhausted "
                f"({modeled:.2f} bits)"
            )
            diverge = divergence_report(
                scheme, sk, [(f"{engine}-out", result.ciphertexts[0])]
            )
            assert diverge.sound

            fraction = model.noise_fraction(estimate)
            width["engines"][engine] = {
                "modeled_headroom_bits": round(modeled, 2),
                "measured_headroom_bits": round(measured, 2),
                "slack_bits": round(measured - modeled, 2),
                "noise_fraction": round(fraction, 4),
                "ops": estimate.ops,
            }
            min_headroom = min(min_headroom, modeled)
            if fraction > worst["noise_fraction"]:
                worst.update(engine=engine, omega=omega,
                             noise_fraction=round(fraction, 4))
        report["prime_widths"][str(omega)] = width

    report["min_headroom_bits"] = round(min_headroom, 2)
    report["worst"] = worst
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(f"noise headroom, modeled vs measured (N={N}, t=2, 2 rounds):")
        for omega, width in report["prime_widths"].items():
            print(f"  omega={omega} (log2 q = {width['log2_q']}):")
            for engine, row in width["engines"].items():
                print(
                    f"    {engine:7s} modeled {row['modeled_headroom_bits']:7.2f}  "
                    f"measured {row['measured_headroom_bits']:7.2f}  "
                    f"slack {row['slack_bits']:6.2f} bits  "
                    f"({row['noise_fraction']:.0%} of budget)"
                )
        print(
            f"  worst: {worst['engine']} @ omega={worst['omega']} uses "
            f"{worst['noise_fraction']:.1%} of budget (ceiling {NOISE_CEILING:.0%})"
        )
        print(f"  -> {BENCH_JSON.name}")

    assert worst["noise_fraction"] < NOISE_CEILING, (
        f"worst path ({worst['engine']} @ omega={worst['omega']}) consumes "
        f"{worst['noise_fraction']:.1%} of the noise budget; ceiling is "
        f"{NOISE_CEILING:.0%}"
    )
