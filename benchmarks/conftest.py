"""Benchmark harness configuration.

Each ``test_*`` module regenerates one table or figure of the paper
(printed to stdout, captured in bench_output.txt) while pytest-benchmark
times the underlying computation. Run with::

    pytest benchmarks/ --benchmark-only
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
