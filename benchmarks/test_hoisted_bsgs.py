"""Bench: hoisted Galois keyswitching + lazy/int64 kernels vs the PR 6 path.

The tentpole number for the hoisting work: an END-TO-END
``transcipher_blocks`` run of the packed BSGS server, timed twice on the
SAME scheme and the SAME block batch:

* ``bsgs_unhoisted`` — the prior fastest path, restored exactly: every
  baby rotation pays a full digit decomposition through the object-dtype
  bigint CRT round trip (``engine.exact_digits = False``), babies chained
  one keyswitch at a time (``hoisted=False``);
* ``bsgs_hoisted`` — the shipped default: one RNS-native int64 digit
  decomposition shared by all bs - 1 baby rotations per affine side
  (Halevi-Shoup), lazy-reduction NTT stages underneath.

Nothing is extrapolated: t = 32 gives the real (8, 4) BSGS split — 7 baby
rotations amortize one decomposition per affine side — and N = 512 packs
8 blocks per run. Decrypted keystreams are pinned identical across both
paths (hoisting is an amortization, not an approximation) and instrumented
op counts must hit the closed forms for both engines.

Acceptance bar: hoisted >= 1.5x unhoisted blocks/s measured (2x target).
Results land in ``benchmarks/BENCH_hoisted_bsgs.json`` (CI artifact,
gated by ``repro perfgate`` against ``benchmarks/baselines/``).
"""

import json
import time
from pathlib import Path

from repro.fhe import BatchEncoder, Bfv, toy_parameters
from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
from repro.pasta import PASTA_MICRO, Pasta, PastaParams, homomorphic_op_counts, random_key

SPEEDUP_FLOOR = 1.5
BENCH_JSON = Path(__file__).parent / "BENCH_hoisted_bsgs.json"

#: Same reduced instance as the bsgs_affine bench: PASTA-4's state size
#: (t = 32, split (8, 4)) with rounds/modulus small enough for a
#: seconds-scale run. NOT SECURE — benchmark-only.
PASTA_BSGS = PastaParams(name="pasta-bsgs", t=32, rounds=2, p=PASTA_MICRO.p, secure=False)
N = 512
LOG2_Q = 240
PRIME_BITS = 26
BLOCKS = 8  #: exactly the packed capacity: (N/2) / t slot groups per row


def test_hoisted_bsgs_throughput(capsys):
    params = toy_parameters(PASTA_BSGS.p, n=N, log2_q=LOG2_Q, prime_bits=PRIME_BITS)
    scheme = Bfv(params, seed=b"hoisted-bench")
    sk, pk, rlk = scheme.keygen()
    gk = scheme.rotation_keygen(
        sk, BatchedHheServer.required_rotation_steps(PASTA_BSGS, N)
    )
    encoder = BatchEncoder(params.n, PASTA_BSGS.p)
    key = random_key(PASTA_BSGS, seed=b"hoisted-bench")
    enc_key = encrypt_key_batched(scheme, pk, encoder, key)
    cipher = Pasta(PASTA_BSGS, key)
    messages = [
        [(29 * b + j) % PASTA_BSGS.p for j in range(PASTA_BSGS.t)] for b in range(BLOCKS)
    ]
    blocks = [
        [int(x) for x in cipher.encrypt_block(m, nonce=9, counter=c)]
        for c, m in enumerate(messages)
    ]
    counters = list(range(BLOCKS))

    report = {
        "pasta": {"name": PASTA_BSGS.name, "t": PASTA_BSGS.t, "rounds": PASTA_BSGS.rounds},
        "bfv": {"n": N, "log2_q": LOG2_Q, "prime_bits": PRIME_BITS},
        "blocks": BLOCKS,
        "op_counts": {
            engine: homomorphic_op_counts(PASTA_BSGS, engine=engine)
            for engine in ("bsgs", "bsgs_hoisted")
        },
        "engines": {},
    }
    decryptions = {}
    for label, hoisted in (("bsgs_unhoisted", False), ("bsgs_hoisted", True)):
        server = BatchedHheServer(
            PASTA_BSGS, scheme, rlk, encoder, enc_key,
            engine="bsgs", galois_keys=gk, hoisted=hoisted,
        )
        # The unhoisted comparator is the true pre-hoisting path: per-baby
        # keyswitch AND the object-dtype bigint digit decomposition the
        # RNS-native int64 path replaced. The flag is read per call, so
        # flipping it on the shared engine scopes to this run only.
        scheme.engine.exact_digits = hoisted
        try:
            # Warm run: populates the prepared-plaintext LRUs (cached
            # across calls in production) so the timed run measures the
            # evaluation.
            warm = server.transcipher_blocks(blocks, nonce=9, counters=counters)
            assert decrypt_batched_result(scheme, sk, encoder, warm) == messages
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                result = server.transcipher_blocks(blocks, nonce=9, counters=counters)
                best = min(best, time.perf_counter() - start)
        finally:
            scheme.engine.exact_digits = True
        decryptions[label] = decrypt_batched_result(scheme, sk, encoder, result)
        formula = "bsgs_hoisted" if hoisted else "bsgs"
        measured = {
            k: getattr(result.ops, k) for k in homomorphic_op_counts(PASTA_BSGS, formula)
        }
        assert measured == homomorphic_op_counts(PASTA_BSGS, engine=formula), (
            label, measured,
        )
        budget = min(scheme.noise_budget_bits(sk, ct) for ct in result.ciphertexts)
        assert budget > 0, f"{label} path out of noise budget ({budget:.1f} bits)"
        report["engines"][label] = {
            "eval_s": best,
            "blocks_per_s": BLOCKS / best,
            "ciphertexts": len(result.ciphertexts),
            "noise_budget_bits": budget,
            "decompositions": result.ops.decompositions,
        }

    # Hoisting must reproduce the unhoisted plaintexts exactly.
    assert decryptions["bsgs_hoisted"] == decryptions["bsgs_unhoisted"] == messages

    speedup = (
        report["engines"]["bsgs_hoisted"]["blocks_per_s"]
        / report["engines"]["bsgs_unhoisted"]["blocks_per_s"]
    )
    report["speedup_vs_unhoisted"] = speedup
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"Hoisted BSGS {PASTA_BSGS.name} transciphering "
            f"(t={PASTA_BSGS.t}, N={N}, log2 q={LOG2_Q}, {BLOCKS} blocks):"
        )
        for name, eng in report["engines"].items():
            print(
                f"  {name:14s} {eng['eval_s']:7.2f} s/evaluation  "
                f"{eng['blocks_per_s']:8.2f} blocks/s  "
                f"({eng['decompositions']} decompositions)"
            )
        print(f"  speedup  {speedup:6.1f}x vs unhoisted  (floor {SPEEDUP_FLOOR}x)")
        print(f"  -> {BENCH_JSON.name}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"hoisted path only {speedup:.2f}x over the unhoisted path; "
        f"floor is {SPEEDUP_FLOOR}x"
    )
