"""Bench: regenerate Table I (FPGA area of PASTA-3/4 on Artix-7)."""

from repro.eval import EXPERIMENTS
from repro.hw import fpga_area
from repro.pasta import ALL_PUBLISHED


def test_table1_fpga_area(benchmark, capsys):
    result = benchmark(lambda: [fpga_area(p) for p in ALL_PUBLISHED])
    assert [a.dsp for a in result] == [256, 64, 256, 576]
    with capsys.disabled():
        print()
        print(EXPERIMENTS["table1"]().render())
