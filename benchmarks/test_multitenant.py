"""Bench: multi-tenant sharded service — scale, zero loss, and fairness.

Three runs of :class:`~repro.service.tenants.MultiTenantService` at toy
parameters on a 10%-drop uplink:

1. **Solo** — the ``quiet`` tenant alone. Its p99 frame latency is the
   baseline a well-isolated service should roughly preserve under load.
2. **Scale** — 4 tenants x 16 sessions = 64 concurrent sessions. Every
   frame must come back bit-exact (zero loss) and the global materials
   budget must hold: aggregate cached cost <= capacity however many
   tenant engines are live.
3. **Hot tenant** — one tenant offers 3x the sessions of the quiet
   tenant. Admission round-robin plus fair-share eviction must keep the
   quiet tenant's p99 under ``FAIRNESS_CEILING`` (2x) of its solo
   baseline — the isolation claim, asserted hard here and gated
   relatively by perfgate via ``fairness.p99_ratio``.

Results land in ``benchmarks/BENCH_multitenant.json`` (sessions/s and
frames/s from the scale run, the fairness ratio from the hot run), gated
against ``benchmarks/baselines/`` by ``python -m repro perfgate``.
"""

import json
from pathlib import Path

from repro.apps.video import synthetic_frame
from repro.obs import MetricsRegistry
from repro.pasta import PASTA_TOY
from repro.service import FaultPlan, MultiTenantConfig, MultiTenantService, TenantSpec

DROP_RATE = 0.10
FAULT_SEED = 11
FRAMES_PER_SESSION = 4
ENGINE_BUDGET_BLOCKS = 128
FAIRNESS_CEILING = 2.0
BENCH_JSON = Path(__file__).parent / "BENCH_multitenant.json"


def run_service(tenants, seed=FAULT_SEED):
    config = MultiTenantConfig(
        tenants=tenants,
        params=PASTA_TOY,
        n_shards=2,
        max_active_sessions=4,
        batch_frames=16,
        worker_batch=32,
        timeout_seconds=0.005,
        backoff_base_seconds=0.001,
        backoff_max_seconds=0.01,
        engine_cache_blocks=ENGINE_BUDGET_BLOCKS,
    )
    service = MultiTenantService(
        config, FaultPlan(seed=seed, drop_rate=DROP_RATE), registry=MetricsRegistry()
    )
    return service, service.run()


def test_multitenant_scale_and_fairness(capsys):
    # 1. Solo baseline: the quiet tenant with the service to itself.
    quiet = TenantSpec("quiet", sessions=16, frames_per_session=FRAMES_PER_SESSION)
    _, solo = run_service((quiet,))
    solo_p99 = solo.tenant_latency["quiet"]["p99"]
    assert solo.frames_lost == 0

    # 2. Scale: 64 concurrent sessions across 4 tenants, 10% drops.
    fleet = tuple(
        TenantSpec(f"tenant-{i}", sessions=16, frames_per_session=FRAMES_PER_SESSION)
        for i in range(4)
    )
    scale_service, scale = run_service(fleet)
    assert scale.sessions_completed == 64
    assert scale.frames_lost == 0, "frame loss under injected drops"
    for uid, job in scale_service._frames.items():
        assert scale_service.recovered_pixels(uid) == bytes(
            synthetic_frame(job.resolution, uid)
        ), f"frame {uid} not bit-exact"
    budget = scale.cache_budgets["engine_blocks"]
    assert budget["total"] <= budget["capacity"], (
        f"global materials budget exceeded: {budget}"
    )

    # 3. Fairness: a 3x-hot tenant must not push the quiet tenant's p99
    #    past FAIRNESS_CEILING x its solo baseline.
    _, contended = run_service(
        (TenantSpec("hot", sessions=48, frames_per_session=FRAMES_PER_SESSION), quiet)
    )
    assert contended.frames_lost == 0
    quiet_p99 = contended.tenant_latency["quiet"]["p99"]
    p99_ratio = quiet_p99 / solo_p99 if solo_p99 > 0 else float("inf")

    report = {
        "params": PASTA_TOY.name,
        "drop_rate": DROP_RATE,
        "frames_per_session": FRAMES_PER_SESSION,
        "engine_budget_blocks": ENGINE_BUDGET_BLOCKS,
        "scale": {
            "tenants": len(fleet),
            "sessions": scale.sessions_completed,
            "frames": scale.frames_recovered,
            "frames_lost": scale.frames_lost,
            "shed_frames": scale.shed_frames,
            "admission_deferred": scale.admission_deferred,
            "budget": budget,
            "tenant_p99_ms": {
                t: round(s["p99"] * 1e3, 2) for t, s in scale.tenant_latency.items()
            },
        },
        "sessions_per_s": round(scale.sessions_per_s, 1),
        "frames_per_s": round(scale.frames_per_s, 1),
        "fairness": {
            "hot_sessions": 48,
            "quiet_sessions": 16,
            "solo_p99_ms": round(solo_p99 * 1e3, 2),
            "contended_p99_ms": round(quiet_p99 * 1e3, 2),
            "hot_p99_ms": round(contended.tenant_latency["hot"]["p99"] * 1e3, 2),
            "p99_ratio": round(p99_ratio, 3),
            "ceiling": FAIRNESS_CEILING,
        },
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(f"multi-tenant service ({PASTA_TOY.name}, {DROP_RATE:.0%} drops):")
        print(
            f"  scale: {scale.sessions_completed} sessions / 4 tenants, "
            f"{scale.sessions_per_s:.1f} sessions/s, {scale.frames_per_s:.1f} frames/s, 0 lost"
        )
        print(
            f"  budget: {budget['total']:.0f}/{budget['capacity']:.0f} blocks, "
            f"evictions {budget['evictions']}"
        )
        print(
            f"  fairness: quiet p99 {solo_p99 * 1e3:.1f} ms solo -> "
            f"{quiet_p99 * 1e3:.1f} ms under 3x hot tenant ({p99_ratio:.2f}x, "
            f"ceiling {FAIRNESS_CEILING}x)"
        )

    assert p99_ratio < FAIRNESS_CEILING, (
        f"hot tenant pushed quiet tenant's p99 to {p99_ratio:.2f}x solo "
        f"({quiet_p99 * 1e3:.1f} ms vs {solo_p99 * 1e3:.1f} ms); ceiling is "
        f"{FAIRNESS_CEILING}x"
    )
