"""Bench: cross-scheme projection (future-work design-space exploration)."""

import pytest

from repro.eval import EXPERIMENTS
from repro.variants import ALL_VARIANTS, PASTA_4_SPEC, projected_cycles


def test_variant_projection(benchmark, capsys):
    cycles = benchmark(lambda: [projected_cycles(v) for v in ALL_VARIANTS])
    assert len(cycles) == 5
    assert 1_550 < projected_cycles(PASTA_4_SPEC) < 1_700
    with capsys.disabled():
        print()
        print(EXPERIMENTS["variants"](n_nonces=2).render())
