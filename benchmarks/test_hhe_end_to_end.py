"""Bench: the HHE workflow of paper Figs. 1-2 (transciphering on BFV).

Times one homomorphic block decryption at reduced (micro) parameters and
prints the HHE cost table (depth, multiplication counts, ciphertext
expansion), including a fully executed reduced-size transcipher.
"""

import pytest

from repro.eval import EXPERIMENTS
from repro.fhe import toy_parameters
from repro.hhe import HheClient, HheServer
from repro.pasta import PASTA_MICRO


@pytest.fixture(scope="module")
def session():
    client = HheClient(PASTA_MICRO, toy_parameters(PASTA_MICRO.p, n=256, log2_q=190), seed=b"bench")
    server = HheServer.from_client(client)
    return client, server


def test_hhe_transcipher_block(benchmark, session, capsys):
    client, server = session
    message = [321, 54321]
    sym = client.encrypt(message, nonce=1)

    result = benchmark.pedantic(
        server.transcipher_block, args=(list(sym), 1, 0), rounds=2, iterations=1
    )
    assert client.decrypt_result(result.ciphertexts) == message
    with capsys.disabled():
        print()
        print(EXPERIMENTS["hhe_cost"](run_transcipher=False).render())


def test_bfv_multiply(benchmark, session):
    client, _ = session
    scheme = client.scheme
    ct = scheme.encrypt(client.pk, 7)
    out = benchmark(scheme.multiply, ct, ct, client.rlk)
    assert scheme.decrypt(client.sk, out) == 49


def test_hhe_batched_transcipher(benchmark):
    """SIMD amortization: three blocks in one circuit evaluation."""
    from repro.fhe import BatchEncoder, Bfv, BfvParams
    from repro.hhe import BatchedHheServer, decrypt_batched_result, encrypt_key_batched
    from repro.pasta import Pasta, random_key

    bfv = BfvParams(n=256, q=1 << 230, p=PASTA_MICRO.p)
    scheme = Bfv(bfv, seed=b"batched-bench")
    sk, pk, rlk = scheme.keygen()
    encoder = BatchEncoder(bfv.n, PASTA_MICRO.p)
    key = random_key(PASTA_MICRO, b"batched-bench")
    cipher = Pasta(PASTA_MICRO, key)
    server = BatchedHheServer(
        PASTA_MICRO, scheme, rlk, encoder, encrypt_key_batched(scheme, pk, encoder, [int(k) for k in key])
    )
    blocks = [[1, 2], [3, 4], [5, 6]]
    cts = [[int(x) for x in cipher.encrypt_block(b, 9, c)] for c, b in enumerate(blocks)]

    result = benchmark.pedantic(
        server.transcipher_blocks, args=(cts, 9, [0, 1, 2]), rounds=2, iterations=1
    )
    assert decrypt_batched_result(scheme, sk, encoder, result) == blocks
