"""Bench: regenerate Fig. 7 (module-wise area breakdown, FPGA + ASIC)."""

import pytest

from repro.eval import EXPERIMENTS
from repro.hw import module_areas
from repro.pasta import PASTA_4


def test_fig7_area_breakdown(benchmark, capsys):
    areas = benchmark(module_areas, PASTA_4, "fpga")
    assert sum(areas.values()) == pytest.approx(23_736)
    with capsys.disabled():
        print()
        print(EXPERIMENTS["fig7"]().render())
