"""Bench: Sec. IV-B Keccak budget (permutation counts, cycle derivations)."""

import pytest

from repro.eval import EXPERIMENTS
from repro.keccak import keccak_f1600, shake128


@pytest.fixture(scope="module")
def budget_text():
    return EXPERIMENTS["keccak_budget"](n_nonces=3).render()


def test_keccak_permutation(benchmark, budget_text, capsys):
    state = list(range(25))
    out = benchmark(keccak_f1600, state)
    assert out != state
    with capsys.disabled():
        print()
        print(budget_text)


def test_shake128_squeeze_21_words(benchmark):
    """One hardware squeeze batch: 21 64-bit words."""

    def squeeze_batch():
        stream = shake128(b"bench").words()
        return [next(stream) for _ in range(21)]

    words = benchmark(squeeze_batch)
    assert len(words) == 21
