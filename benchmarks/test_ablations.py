"""Bench: design-choice ablations (XOF core, variant trade-off, sharing)."""

import pytest

from repro.eval import EXPERIMENTS
from repro.hw import PastaAccelerator
from repro.keccak import NaiveKeccakCore, OverlappedKeccakCore
from repro.pasta import PASTA_4, random_key


@pytest.fixture(scope="module")
def ablation_text():
    return EXPERIMENTS["ablations"](n_nonces=2).render()


def test_overlapped_core_block(benchmark, ablation_text, capsys):
    accel = PastaAccelerator(PASTA_4, random_key(PASTA_4), core_cls=OverlappedKeccakCore)
    _, report = benchmark(accel.keystream_block, 2, 0)
    fast_cycles = report.total_cycles
    slow_accel = PastaAccelerator(PASTA_4, random_key(PASTA_4), core_cls=NaiveKeccakCore)
    _, slow_report = slow_accel.keystream_block(2, 0)
    assert slow_report.total_cycles / fast_cycles > 1.5
    with capsys.disabled():
        print()
        print(ablation_text)


def test_naive_core_block(benchmark):
    accel = PastaAccelerator(PASTA_4, random_key(PASTA_4), core_cls=NaiveKeccakCore)
    _, report = benchmark(accel.keystream_block, 2, 0)
    assert report.total_cycles > 2_400
